package olfs

import (
	"errors"
	"fmt"
	"io"

	"ros/internal/image"
	"ros/internal/mv"
	"ros/internal/obs"
	"ros/internal/optical"
	"ros/internal/rack"
	"ros/internal/sched"
	"ros/internal/sim"
	"ros/internal/udf"
)

// errStaleSource marks a resolution that raced a tray eviction: the group's
// epoch moved while the source was being mounted/opened. Callers retry —
// fetchTray brings the tray back.
var errStaleSource = errors.New("olfs: read source invalidated by tray eviction")

// maxSourceRetries bounds how often one part re-resolves after losing a race
// with eviction before the error is surfaced.
const maxSourceRetries = 4

// partSource is a resolved, readable subfile location, stamped with where it
// was resolved so a later read can detect that the tray has since been
// evicted (group < 0 means the image was buffer-resident).
type partSource struct {
	rd    *udf.Reader
	len   int64
	id    image.ID
	vol   *udf.Volume
	group int
	epoch uint64
	tray  rack.TrayID
}

// fileReader is an open-for-read OLFS file handle. class is the QoS class
// mechanical work (tray fetches, read slots) is admitted at; the zero value
// is sched.Interactive, so foreground handles need no explicit setup.
type fileReader struct {
	fs      *FS
	path    string
	entry   mv.VersionEntry
	off     int64
	class   sched.Class
	sources []*partSource // resolved lazily per part
}

// OpenFile resolves path's current version (Fig 7 read prologue: stat).
func (fs *FS) OpenFile(p *sim.Proc, path string) (*fileReader, error) {
	if fs.stopped {
		return nil, ErrStopped
	}
	var ix *mv.Index
	if err := fs.op(p, "stat", func() error {
		var err error
		ix, err = fs.MV.Stat(p, path)
		return err
	}); err != nil {
		return nil, err
	}
	if ix.Dir {
		return nil, fmt.Errorf("olfs: %s is a directory", path)
	}
	cur := ix.Current()
	if cur == nil {
		return &fileReader{fs: fs, path: path}, nil // empty file
	}
	return &fileReader{
		fs:      fs,
		path:    path,
		entry:   *cur,
		sources: make([]*partSource, len(cur.Parts)),
	}, nil
}

// OpenFileVersion resolves a historical version (data provenance, §4.6).
func (fs *FS) OpenFileVersion(p *sim.Proc, path string, version int) (*fileReader, error) {
	var ix *mv.Index
	if err := fs.op(p, "stat", func() error {
		var err error
		ix, err = fs.MV.Stat(p, path)
		return err
	}); err != nil {
		return nil, err
	}
	ve := ix.VersionAt(version)
	if ve == nil {
		return nil, fmt.Errorf("olfs: %s has no retained version %d", path, version)
	}
	return &fileReader{
		fs:      fs,
		path:    path,
		entry:   *ve,
		sources: make([]*partSource, len(ve.Parts)),
	}, nil
}

// Size returns the file size of the opened version.
func (fr *fileReader) Size() int64 { return fr.entry.Size }

// Read fills buf from the current offset (one data request).
func (fr *fileReader) Read(p *sim.Proc, buf []byte) (int, error) {
	fs := fr.fs
	var n int
	err := fs.dataOp(p, "read", func() error {
		p.Sleep(fs.cfg.ReadReqOverhead)
		if fs.cfg.DirectIO {
			fs.chargeMVOp(p)
		}
		var err error
		n, err = fr.readAt(p, buf, fr.off)
		return err
	})
	fr.off += int64(n)
	fs.m.bytesRead.Add(int64(n))
	return n, err
}

// ReadAt fills buf at an absolute offset without moving the handle.
func (fr *fileReader) ReadAt(p *sim.Proc, buf []byte, off int64) (int, error) {
	fs := fr.fs
	var n int
	err := fs.dataOp(p, "read", func() error {
		p.Sleep(fs.cfg.ReadReqOverhead)
		if fs.cfg.DirectIO {
			fs.chargeMVOp(p)
		}
		var err error
		n, err = fr.readAt(p, buf, off)
		return err
	})
	fs.m.bytesRead.Add(int64(n))
	return n, err
}

// Close releases the handle (Fig 7's trailing close op).
func (fr *fileReader) Close(p *sim.Proc) error {
	return fr.fs.op(p, "close", func() error {
		fr.fs.chargeMVOp(p)
		fr.fs.m.filesRead.Add(1)
		return nil
	})
}

// partSeg is one part's overlap with a read request: fill buf[lo:hi] from
// byte inOff of part.
type partSeg struct {
	part   int
	lo, hi int
	inOff  int64
}

// segments maps a logical [off, off+len(buf)) read onto the version's parts.
func (fr *fileReader) segments(buf []byte, off int64) []partSeg {
	var segs []partSeg
	read := 0
	partStart := int64(0)
	for i := range fr.entry.Parts {
		plen := fr.partLen(i)
		if off+int64(read) < partStart+plen && read < len(buf) {
			inOff := off + int64(read) - partStart
			want := plen - inOff
			if want > int64(len(buf)-read) {
				want = int64(len(buf) - read)
			}
			segs = append(segs, partSeg{part: i, lo: read, hi: read + int(want), inOff: inOff})
			read += int(want)
		}
		partStart += plen
	}
	return segs
}

// readAt maps a logical file offset across the version's parts. Requests
// spanning several parts resolve and read them concurrently (split files land
// on distinct discs, so the group aggregates their bandwidth) unless
// SerialRead pins the legacy one-at-a-time walk.
func (fr *fileReader) readAt(p *sim.Proc, buf []byte, off int64) (int, error) {
	if off >= fr.entry.Size || len(buf) == 0 {
		return 0, nil
	}
	segs := fr.segments(buf, off)
	if len(segs) == 0 {
		return 0, nil
	}
	if len(segs) == 1 || fr.fs.cfg.SerialRead {
		return fr.readSegsSerial(p, buf, segs)
	}
	return fr.readSegsParallel(p, buf, segs)
}

// readSegsSerial reads the segments in order on the calling proc. A short
// read on any segment but the last under-fills the buffer, which is an error,
// not an EOF (the index said the bytes exist).
func (fr *fileReader) readSegsSerial(p *sim.Proc, buf []byte, segs []partSeg) (int, error) {
	read := 0
	for k, s := range segs {
		n, err := fr.readSeg(p, buf, s)
		read = s.lo + n
		if err != nil {
			return read, err
		}
		if s.lo+n < s.hi {
			if k < len(segs)-1 {
				return read, io.ErrUnexpectedEOF
			}
			break
		}
	}
	return read, nil
}

// readSegsParallel fans one child proc out per segment, bounded by the drive
// group width. The returned count is the contiguous prefix filled from
// buf[segs[0].lo:], with the first in-order error.
func (fr *fileReader) readSegsParallel(p *sim.Proc, buf []byte, segs []partSeg) (int, error) {
	fs := fr.fs
	env := fs.env
	tctx := p.TraceContext()
	// The per-group read slots meter drive access; this semaphore only keeps
	// the proc fan-out itself bounded for requests spanning many trays.
	sem := sim.NewResource(env, rack.DrivesPerGroup)
	type segRes struct {
		n   int
		err error
	}
	comps := make([]*sim.Completion[segRes], len(segs))
	for k := range segs {
		s := segs[k]
		c := sim.NewCompletion[segRes](env)
		comps[k] = c
		env.Go(fmt.Sprintf("olfs-pread-p%d", s.part), func(cp *sim.Proc) {
			cp.SetTraceContext(tctx)
			defer cp.SetTraceContext(nil)
			sem.Acquire(cp)
			defer sem.Release()
			sp := obs.StartChild(cp, "olfs.read.part")
			sp.Annotate("part", fmt.Sprintf("%d", s.part))
			n, err := fr.readSeg(cp, buf, s)
			sp.Fail(cp, err)
			c.Resolve(segRes{n: n, err: err}, nil)
		})
	}
	ns := make([]int, len(segs))
	errs := make([]error, len(segs))
	for k, c := range comps {
		r, _ := c.Wait(p)
		ns[k], errs[k] = r.n, r.err
	}
	read := 0
	for k, s := range segs {
		read = s.lo + ns[k]
		if errs[k] != nil {
			return read, errs[k]
		}
		if s.lo+ns[k] < s.hi {
			if k < len(segs)-1 {
				return read, io.ErrUnexpectedEOF
			}
			break
		}
	}
	return read, nil
}

// readSeg resolves one segment's source and reads it. Disc-backed reads pin
// the tray (so the slot wait cannot race an eviction of the very tray the
// validated source points at) and pass through the scheduler's per-group
// read slots.
func (fr *fileReader) readSeg(p *sim.Proc, buf []byte, s partSeg) (int, error) {
	src, err := fr.source(p, s.part)
	if err != nil {
		return 0, err
	}
	if src.group < 0 {
		return src.rd.ReadAt(p, buf[s.lo:s.hi], s.inOff)
	}
	fs := fr.fs
	fs.sched.Pin(src.tray)
	defer fs.sched.Unpin(src.tray)
	fs.sched.AcquireReadSlot(p, fr.class, src.group)
	defer fs.sched.ReleaseReadSlot(src.group)
	return src.rd.ReadAt(p, buf[s.lo:s.hi], s.inOff)
}

// partLen returns part i's byte length.
func (fr *fileReader) partLen(i int) int64 {
	if i < len(fr.entry.PartLens) {
		return fr.entry.PartLens[i]
	}
	return fr.entry.Size
}

// sourceValid reports whether a cached source still points at the data it was
// resolved against: disc sources die with their group epoch (tray evicted),
// buffer sources die when the bucket slot is recycled or re-imaged.
func (fs *FS) sourceValid(s *partSource) bool {
	if s.group >= 0 {
		return fs.groupEpoch[s.group] == s.epoch
	}
	b, ok := fs.Buckets.Resident(s.id)
	return ok && !b.Raw && b.Vol == s.vol
}

// source resolves part i to a readable UDF file, walking the Table 1 tier
// ladder: buffer-resident bucket/image -> disc already in a drive -> disc
// array fetched from the roller. Cached sources are re-validated on every
// call; a source invalidated by tray eviction is transparently re-resolved
// (the bugfix for stale read handles).
func (fr *fileReader) source(p *sim.Proc, i int) (*partSource, error) {
	fs := fr.fs
	if s := fr.sources[i]; s != nil {
		if fs.sourceValid(s) {
			return s, nil
		}
		fr.sources[i] = nil
		fs.m.staleSources.Add(1)
	}
	name := internalName(fr.path, fr.entry.Version)
	var err error
	for try := 0; try < maxSourceRetries; try++ {
		var src *partSource
		src, err = fs.resolveSource(p, fr.entry.Parts[i], name, fr.partLen(i), fr.class)
		if err != nil {
			if errors.Is(err, errStaleSource) {
				fs.m.staleSources.Add(1)
				continue
			}
			return nil, err
		}
		if !fs.sourceValid(src) {
			fs.m.staleSources.Add(1)
			continue
		}
		fr.sources[i] = src
		return src, nil
	}
	if err == nil {
		err = errStaleSource
	}
	return nil, fmt.Errorf("olfs: part %d kept losing the eviction race: %w", i, err)
}

// resolveSource mounts image id and opens name in it, returning the source
// stamped with its location. The tray is pinned for the whole disc path so
// the eviction window closes between the group lookup and the UDF open.
// Mechanical fetches are admitted at class.
func (fs *FS) resolveSource(p *sim.Proc, id image.ID, name string, plen int64, class sched.Class) (*partSource, error) {
	// Tier 1/2: buffer-resident bucket or image (Table 1 rows 1-2).
	if b, ok := fs.Buckets.Resident(id); ok && !b.Raw {
		fs.Buckets.Touch(b)
		fs.m.cacheHits.Add(1)
		rd, err := b.Vol.OpenReader(p, name)
		if err != nil {
			return nil, err
		}
		return &partSource{rd: rd, len: plen, id: id, vol: b.Vol, group: -1}, nil
	}
	fs.m.cacheMisses.Add(1)
	// Tier 3/4: on disc.
	addr, ok := fs.Cat.Locate(id)
	if !ok {
		return nil, fmt.Errorf("%w: image %s", ErrPartMissing, id)
	}
	fs.sched.Pin(addr.Tray)
	defer fs.sched.Unpin(addr.Tray)
	gi := fs.groupHolding(addr.Tray)
	if gi < 0 {
		var err error
		gi, err = fs.fetchTray(p, addr.Tray, class)
		if err != nil {
			return nil, err
		}
	}
	epoch := fs.groupEpoch[gi]
	drv := fs.lib.Groups[gi].Drives[addr.Pos]
	vol, err := fs.mountDrive(p, gi, drv)
	if err == nil {
		var rd *udf.Reader
		rd, err = vol.OpenReader(p, name)
		if err == nil {
			return &partSource{
				rd: rd, len: plen, id: id, vol: vol,
				group: gi, epoch: epoch, tray: addr.Tray,
			}, nil
		}
	}
	if fs.groupEpoch[gi] != epoch {
		// The failure raced an in-flight eviction that was already past the
		// demand check when we pinned; retryable.
		return nil, fmt.Errorf("%w: %v", errStaleSource, err)
	}
	return nil, err
}

// groupHolding returns the index of the group whose loaded tray is tray, or
// -1 (Table 1 row 3: "disc in optical drive", 0.223 s).
func (fs *FS) groupHolding(tray rack.TrayID) int {
	for gi, g := range fs.lib.Groups {
		if g.Source != nil && *g.Source == tray {
			return gi
		}
	}
	return -1
}

// mountImage makes image id readable: from the buffer (RC hit) or from a
// disc, fetching its array mechanically if necessary (RC miss -> FTM).
func (fs *FS) mountImage(p *sim.Proc, id image.ID) (*udf.Volume, error) {
	// Tier 1/2: buffer-resident bucket or image (Table 1 rows 1-2).
	if b, ok := fs.Buckets.Resident(id); ok && !b.Raw {
		fs.Buckets.Touch(b)
		fs.m.cacheHits.Add(1)
		return b.Vol, nil
	}
	fs.m.cacheMisses.Add(1)
	// Tier 3/4: on disc.
	addr, ok := fs.Cat.Locate(id)
	if !ok {
		return nil, fmt.Errorf("%w: image %s", ErrPartMissing, id)
	}
	gi, drv, err := fs.driveForDisc(p, addr)
	if err != nil {
		return nil, err
	}
	return fs.mountDrive(p, gi, drv)
}

// driveForDisc returns a drive holding the disc at addr, invoking the FTM
// when the array is still in the roller.
func (fs *FS) driveForDisc(p *sim.Proc, addr image.DiscAddr) (int, *optical.Drive, error) {
	if gi := fs.groupHolding(addr.Tray); gi >= 0 {
		return gi, fs.lib.Groups[gi].Drives[addr.Pos], nil
	}
	gi, err := fs.fetchTray(p, addr.Tray, sched.Interactive)
	if err != nil {
		return 0, nil, err
	}
	return gi, fs.lib.Groups[gi].Drives[addr.Pos], nil
}

// mountDrive mounts the disc in drv into the local VFS (§5.4: ~220 ms,
// charged once per inserted disc). The mount is cached only if the group's
// epoch is unchanged across the mount delay, so an eviction racing the sleep
// cannot resurrect a stale fs.mounted entry after unmountGroup cleared it.
func (fs *FS) mountDrive(p *sim.Proc, gi int, drv *optical.Drive) (*udf.Volume, error) {
	if v, ok := fs.mounted[drv]; ok {
		return v, nil
	}
	epoch := fs.groupEpoch[gi]
	p.Sleep(fs.cfg.VFSMountTime)
	vol, err := udf.Open(p, optical.ImageView{Drive: drv})
	if err != nil {
		return nil, err
	}
	if fs.groupEpoch[gi] == epoch {
		fs.mounted[drv] = vol
	}
	return vol, nil
}

// unmountGroup forgets mounts for all drives of a group and advances its
// validity epoch, invalidating every fileReader source resolved against the
// outgoing tray (called before the array is unloaded).
func (fs *FS) unmountGroup(gi int) {
	fs.groupEpoch[gi]++
	for _, d := range fs.lib.Groups[gi].Drives {
		delete(fs.mounted, d)
	}
}

// ReadFile reads the whole current version of path (stat + reads + close).
func (fs *FS) ReadFile(p *sim.Proc, path string) ([]byte, error) {
	return fs.ReadFileClass(p, path, sched.Interactive)
}

// ReadFileClass is ReadFile with the QoS class of the mechanical work made
// explicit: tray fetches and drive read slots are admitted at class, so
// background consumers (cluster re-replication, scrub-adjacent maintenance)
// can drain whole files without competing with interactive readers.
func (fs *FS) ReadFileClass(p *sim.Proc, path string, class sched.Class) (data []byte, err error) {
	op := fs.tracer.StartOp(p, "olfs.read", class.String())
	op.Annotate("path", path)
	defer func() { op.Finish(p, err) }()
	fr, err := fs.OpenFile(p, path)
	if err != nil {
		return nil, err
	}
	fr.class = class
	out := make([]byte, 0, fr.Size())
	buf := make([]byte, 1<<20)
	// The size is known from the index, so reads stop at EOF without an
	// extra zero-length probe (keeps the Fig 7 trace at stat, read*, close).
	for int64(len(out)) < fr.Size() {
		n, err := fr.Read(p, buf)
		if n > 0 {
			out = append(out, buf[:n]...)
		}
		if err != nil {
			fr.Close(p)
			return out, err
		}
		if n == 0 {
			break
		}
	}
	return out, fr.Close(p)
}

// ReadFirstByte returns the latency-to-first-byte for path, serving from the
// MV forepart when the data needs a mechanical fetch (§4.8). It reads one
// byte; the caller can then ReadFile normally.
func (fs *FS) ReadFirstByte(p *sim.Proc, path string) (byte, error) {
	var ix *mv.Index
	if err := fs.op(p, "stat", func() error {
		var err error
		ix, err = fs.MV.Stat(p, path)
		return err
	}); err != nil {
		return 0, err
	}
	cur := ix.Current()
	if cur == nil || cur.Size == 0 {
		return 0, fmt.Errorf("olfs: %s is empty", path)
	}
	if fs.cfg.Forepart && len(ix.Forepart) > 0 {
		// Forepart hit: answer from MV immediately (~2 ms path).
		fs.m.forepartHits.Add(1)
		return ix.Forepart[0], nil
	}
	fr := &fileReader{fs: fs, path: path, entry: *cur, sources: make([]*partSource, len(cur.Parts))}
	buf := make([]byte, 1)
	if _, err := fr.readAt(p, buf, 0); err != nil {
		return 0, err
	}
	return buf[0], nil
}

// ReadLocated measures the pure data-access latency of a resolved file — the
// Table 1 experiment, which isolates the location-dependent component from
// the POSIX/MV prologue.
func (fs *FS) ReadLocated(p *sim.Proc, path string) ([]byte, error) {
	ix, ok := fs.MV.Lookup(path)
	if !ok {
		return nil, mv.ErrNotFound
	}
	cur := ix.Current()
	if cur == nil {
		return nil, nil
	}
	fr := &fileReader{fs: fs, path: path, entry: *cur, sources: make([]*partSource, len(cur.Parts))}
	buf := make([]byte, cur.Size)
	n, err := fr.readAt(p, buf, 0)
	return buf[:n], err
}
