package olfs

import (
	"errors"
	"time"

	"ros/internal/mv"
	"ros/internal/sim"
	"ros/internal/vfs"
)

// FS implements vfs.FileSystem (the PI module), so it can sit under the
// FUSE and Samba wrappers in the Fig 6 stack.
var _ vfs.FileSystem = (*FS)(nil)

// mapErr converts mv errors into the shared vfs sentinel space.
func mapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, mv.ErrNotFound):
		return vfs.ErrNotFound
	case errors.Is(err, mv.ErrExist):
		return vfs.ErrExist
	case errors.Is(err, mv.ErrIsDir):
		return vfs.ErrIsDir
	case errors.Is(err, mv.ErrNotDir):
		return vfs.ErrNotDir
	default:
		return err
	}
}

// writeHandle adapts fileWriter to vfs.File.
type writeHandle struct{ fw *fileWriter }

func (h writeHandle) Write(p *sim.Proc, data []byte) (int, error) { return h.fw.Write(p, data) }
func (h writeHandle) Read(p *sim.Proc, buf []byte) (int, error) {
	return 0, errors.New("olfs: handle open for write")
}
func (h writeHandle) Close(p *sim.Proc) error { return h.fw.Close(p) }

// readHandle adapts fileReader to vfs.File.
type readHandle struct{ fr *fileReader }

func (h readHandle) Write(p *sim.Proc, data []byte) (int, error) {
	return 0, vfs.ErrReadOnly
}
func (h readHandle) Read(p *sim.Proc, buf []byte) (int, error) { return h.fr.Read(p, buf) }
func (h readHandle) Close(p *sim.Proc) error                   { return h.fr.Close(p) }

// Create implements vfs.FileSystem.
func (fs *FS) Create(p *sim.Proc, path string) (vfs.File, error) {
	fw, err := fs.CreateFile(p, path)
	if err != nil {
		return nil, mapErr(err)
	}
	return writeHandle{fw}, nil
}

// Open implements vfs.FileSystem.
func (fs *FS) Open(p *sim.Proc, path string) (vfs.File, error) {
	fr, err := fs.OpenFile(p, path)
	if err != nil {
		return nil, mapErr(err)
	}
	return readHandle{fr}, nil
}

// Stat implements vfs.FileSystem.
func (fs *FS) Stat(p *sim.Proc, path string) (vfs.FileInfo, error) {
	var ix *mv.Index
	err := fs.op(p, "stat", func() error {
		var err error
		ix, err = fs.MV.Stat(p, path)
		return err
	})
	if err != nil {
		return vfs.FileInfo{}, mapErr(err)
	}
	fi := vfs.FileInfo{Path: ix.Path, IsDir: ix.Dir}
	if cur := ix.Current(); cur != nil {
		fi.Size = cur.Size
		fi.Version = cur.Version
		fi.ModTime = time.Duration(cur.MTimeNS)
	}
	return fi, nil
}

// Mkdir implements vfs.FileSystem.
func (fs *FS) Mkdir(p *sim.Proc, path string) error {
	return mapErr(fs.op(p, "mkdir", func() error {
		_, err := fs.MV.Mknod(p, path, true)
		return err
	}))
}

// ReadDir implements vfs.FileSystem.
func (fs *FS) ReadDir(p *sim.Proc, path string) ([]vfs.DirEntry, error) {
	var names []string
	err := fs.op(p, "readdir", func() error {
		var err error
		names, err = fs.MV.ReadDir(p, path)
		return err
	})
	if err != nil {
		return nil, mapErr(err)
	}
	out := make([]vfs.DirEntry, 0, len(names))
	base := path
	if base == "/" {
		base = ""
	}
	for _, n := range names {
		de := vfs.DirEntry{Name: n}
		if ix, ok := fs.MV.Lookup(base + "/" + n); ok {
			de.IsDir = ix.Dir
			if cur := ix.Current(); cur != nil {
				de.Size = cur.Size
			}
		}
		out = append(out, de)
	}
	return out, nil
}

// Unlink implements vfs.FileSystem. Only the namespace entry is removed;
// burned data remains on WORM discs (§4.6).
func (fs *FS) Unlink(p *sim.Proc, path string) error {
	return mapErr(fs.op(p, "unlink", func() error {
		return fs.MV.Remove(p, path)
	}))
}
