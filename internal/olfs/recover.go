package olfs

import (
	"fmt"
	"sort"
	"strings"

	"ros/internal/image"
	"ros/internal/mv"
	"ros/internal/optical"
	"ros/internal/rack"
	"ros/internal/sched"
	"ros/internal/sim"
	"ros/internal/udf"
)

// MVSnapshotDir is the namespace subtree holding periodic MV checkpoints
// that get burned to disc with everything else (§4.2: "MV is periodically
// burned into discs").
const MVSnapshotDir = "/.rosmv"

// snapshotChunk bounds one MV snapshot file so a snapshot spreads across
// buckets/discs naturally.
const snapshotChunk = 64 << 20

// BurnMVSnapshot serializes MV and writes it into the normal write path as
// /.rosmv/snap-<n>/part-<i> files; they are burned with the surrounding
// images. Returns the snapshot sequence number.
func (fs *FS) BurnMVSnapshot(p *sim.Proc) (int, error) {
	body, err := fs.MV.CheckpointBytes()
	if err != nil {
		return 0, err
	}
	seq := int(fs.mvSnapSeq())
	for i := 0; len(body) > 0; i++ {
		n := snapshotChunk
		if n > len(body) {
			n = len(body)
		}
		name := fmt.Sprintf("%s/snap-%06d/part-%04d", MVSnapshotDir, seq, i)
		if err := fs.WriteFile(p, name, body[:n]); err != nil {
			return 0, err
		}
		body = body[n:]
	}
	return seq, nil
}

var mvSnapCounter int64

func (fs *FS) mvSnapSeq() int64 {
	mvSnapCounter++
	return mvSnapCounter
}

// scanResult accumulates namespace facts discovered on one image.
type scannedFile struct {
	img  image.ID
	size int64
	prev map[int]image.ID // continuation order hints from link files
}

// RecoverNamespace rebuilds the global namespace by mechanically loading the
// given trays and scanning every disc's self-descriptive UDF subtree (§4.4:
// "all or partial data can be reconstructed by scanning all survived
// discs"). It restores MV indexes (version numbers are lost — entries come
// back as version 1 — unless an MV snapshot is found, which is then applied
// for full fidelity) and rebuilds the DIL/DA catalogs.
//
// The §5.2 experiment — recovering MV from 120 discs in about half an hour —
// is this path: trays load through the robotic arm (~70 s each), and all 12
// discs of a tray are scanned in parallel through their drives.
func (fs *FS) RecoverNamespace(p *sim.Proc, trays []rack.TrayID) error {
	files := make(map[string]map[string]*scannedFile) // path -> imageID -> info
	dirs := make(map[string]bool)
	var bestSnap string
	snapParts := make(map[string][]byte)

	for _, tray := range trays {
		gi, err := fs.fetchTray(p, tray, sched.Interactive)
		if err != nil {
			return fmt.Errorf("olfs: recover fetch %v: %w", tray, err)
		}
		g := fs.lib.Groups[gi]
		// Scan the 12 discs in parallel.
		comps := make([]*sim.Completion[error], 0, len(g.Drives))
		for pos, drv := range g.Drives {
			if !drv.Loaded() || drv.Disc().Blank() {
				continue
			}
			pos, drv := pos, drv
			c := sim.NewCompletion[error](fs.env)
			comps = append(comps, c)
			fs.env.Go("scan", func(sp *sim.Proc) {
				c.Resolve(nil, fs.scanDisc(sp, gi, drv, image.DiscAddr{Tray: tray, Pos: pos}, files, dirs, snapParts, &bestSnap))
			})
		}
		for _, c := range comps {
			if _, err := c.Wait(p); err != nil {
				// Unreadable discs are skipped: partial recovery is the point.
				continue
			}
		}
		fs.Cat.SetDAState(tray, image.DAUsed)
	}

	// Also scan buffer-resident images (unburned buckets and recovered or
	// cached copies survive on the disk tier across an MV loss).
	for _, b := range fs.Buckets.Slots() {
		if b.Vol == nil || b.Raw {
			continue
		}
		_ = fs.scanVolume(p, b.Vol, files, dirs, snapParts, &bestSnap)
	}

	// Prefer a complete MV snapshot when one was found.
	if bestSnap != "" {
		var body []byte
		var names []string
		for name := range snapParts {
			if strings.HasPrefix(name, bestSnap+"/") {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, n := range names {
			body = append(body, snapParts[n]...)
		}
		restored, err := mv.Restore(fs.env, fs.mvStore, fs.cfg.MVOpCost, body)
		if err == nil {
			fs.restoreFromMV(restored)
			return nil
		}
		// Fall through to structural recovery on a corrupt snapshot.
	}

	for d := range dirs {
		fs.MV.Restore(mv.Index{Path: d, Dir: true})
	}
	// Internal names carry version suffixes; regroup per base path.
	perBase := make(map[string][]mv.VersionEntry)
	for internal, imgs := range files {
		base, ver := parseVersionName(internal)
		ve := assembleParts(imgs)
		ve.Version = ver
		perBase[base] = append(perBase[base], ve)
	}
	for base, entries := range perBase {
		sort.Slice(entries, func(i, j int) bool { return entries[i].Version < entries[j].Version })
		fs.MV.Restore(mv.Index{Path: base, Entries: entries})
	}
	return nil
}

// parseVersionName splits an internal image path "<base>[.__v<k>]".
func parseVersionName(internal string) (base string, version int) {
	i := strings.LastIndex(internal, ".__v")
	if i < 0 {
		return internal, 1
	}
	var v int
	if _, err := fmt.Sscanf(internal[i+len(".__v"):], "%d", &v); err != nil || v < 2 {
		return internal, 1
	}
	return internal[:i], v
}

// restoreFromMV swaps in a recovered namespace (keeping the live catalog,
// which RecoverNamespace already rebuilt from disc positions).
func (fs *FS) restoreFromMV(restored *mv.Volume) {
	_ = restored.Walk(func(ix *mv.Index) error {
		fs.MV.Restore(*ix)
		return nil
	})
}

// scanDisc mounts one disc and walks its self-descriptive subtree, charging
// real drive-read time for every directory and entry block touched.
func (fs *FS) scanDisc(p *sim.Proc, gi int, drv *optical.Drive, addr image.DiscAddr,
	files map[string]map[string]*scannedFile, dirs map[string]bool,
	snapParts map[string][]byte, bestSnap *string) error {
	vol, err := fs.mountDrive(p, gi, drv)
	if err != nil {
		return err
	}
	fs.Cat.Place(image.ID(vol.ImageID()), addr)
	return fs.scanVolume(p, vol, files, dirs, snapParts, bestSnap)
}

// scanVolume walks one image's namespace subtree into the recovery maps.
func (fs *FS) scanVolume(p *sim.Proc, vol *udf.Volume,
	files map[string]map[string]*scannedFile, dirs map[string]bool,
	snapParts map[string][]byte, bestSnap *string) error {
	imgID := image.ID(vol.ImageID())
	idStr := imgID.String()
	return vol.Walk(p, func(info udf.Info) error {
		switch {
		case info.IsDir:
			if info.Path != MVSnapshotDir && !strings.HasPrefix(info.Path, MVSnapshotDir+"/") {
				dirs[info.Path] = true
			}
		case info.IsLink:
			// "<path>.__rosprev<k>" -> target "image:<32-hex-id><path>".
			base, k, ok := parseLinkName(info.Path)
			if !ok {
				return nil
			}
			prevID, ok := parseLinkTarget(info.LinkTarget)
			if !ok {
				return nil
			}
			sf := fileSlot(files, base, idStr, imgID)
			sf.prev[k] = prevID
		case strings.HasPrefix(info.Path, MVSnapshotDir+"/"):
			data, err := vol.ReadFile(p, info.Path)
			if err != nil {
				return nil // damaged snapshot part: structural recovery still works
			}
			snapParts[info.Path] = data
			dir := info.Path[:strings.LastIndex(info.Path, "/")]
			if dir > *bestSnap {
				*bestSnap = dir
			}
		default:
			sf := fileSlot(files, info.Path, idStr, imgID)
			sf.size = info.Size
		}
		return nil
	})
}

// fileSlot returns (creating) the scan record for path on image idStr.
func fileSlot(files map[string]map[string]*scannedFile, path, idStr string, img image.ID) *scannedFile {
	m := files[path]
	if m == nil {
		m = make(map[string]*scannedFile)
		files[path] = m
	}
	sf := m[idStr]
	if sf == nil {
		sf = &scannedFile{img: img, prev: make(map[int]image.ID)}
		m[idStr] = sf
	}
	return sf
}

// parseLinkName splits "<path>.__rosprev<k>".
func parseLinkName(name string) (base string, k int, ok bool) {
	i := strings.LastIndex(name, ".__rosprev")
	if i < 0 {
		return "", 0, false
	}
	var n int
	if _, err := fmt.Sscanf(name[i+len(".__rosprev"):], "%d", &n); err != nil {
		return "", 0, false
	}
	return name[:i], n, true
}

// parseLinkTarget extracts the predecessor image ID from
// "image:<32-hex><path>".
func parseLinkTarget(target string) (image.ID, bool) {
	const pfx = "image:"
	if !strings.HasPrefix(target, pfx) || len(target) < len(pfx)+32 {
		return image.ID{}, false
	}
	id, err := image.Parse(target[len(pfx) : len(pfx)+32])
	if err != nil {
		return image.ID{}, false
	}
	return id, true
}

// assembleParts orders a path's subfiles into a version entry using the
// continuation links.
func assembleParts(imgs map[string]*scannedFile) mv.VersionEntry {
	// Build prev-edges: image B's link names image A as its predecessor.
	prevOf := make(map[string]string) // imageID -> predecessor imageID
	for id, sf := range imgs {
		for _, prev := range sf.prev {
			prevOf[id] = prev.String()
		}
	}
	// Find the head (no predecessor pointing to it from within the set);
	// single-part files trivially have one entry.
	isSuccessor := make(map[string]bool)
	for id := range imgs {
		if pred, ok := prevOf[id]; ok {
			_ = pred
			isSuccessor[id] = true
		}
	}
	var order []string
	var head string
	for id := range imgs {
		if !isSuccessor[id] {
			head = id
			break
		}
	}
	if head == "" { // cycle or missing head: deterministic fallback
		for id := range imgs {
			if head == "" || id < head {
				head = id
			}
		}
	}
	// Chain forward: successor is the image whose prev == current.
	next := make(map[string]string)
	for id, pred := range prevOf {
		next[pred] = id
	}
	for id := head; id != ""; id = next[id] {
		order = append(order, id)
		if len(order) > len(imgs) {
			break
		}
	}
	// Include any unchained leftovers deterministically.
	seen := make(map[string]bool)
	for _, id := range order {
		seen[id] = true
	}
	var rest []string
	for id := range imgs {
		if !seen[id] {
			rest = append(rest, id)
		}
	}
	sort.Strings(rest)
	order = append(order, rest...)

	ve := mv.VersionEntry{Version: 1}
	for _, idStr := range order {
		sf, ok := imgs[idStr]
		if !ok {
			continue
		}
		id, err := image.Parse(idStr)
		if err != nil {
			continue
		}
		ve.Parts = append(ve.Parts, id)
		ve.PartLens = append(ve.PartLens, sf.size)
		ve.Size += sf.size
	}
	return ve
}

// Reopen reconstructs an FS after a controller crash/replacement: MV is
// loaded from its checkpoint on the RAID-1 backend, the catalog from MV
// system state, and buffer-resident buckets are rediscovered by probing the
// buffer slots for UDF volumes (§4.2 crash recovery).
func Reopen(env *sim.Env, p *sim.Proc, cfg Config, lib *rack.Library, mvBackend mv.Backend, buffer udf.Backend) (*FS, error) {
	fs, err := New(env, cfg, lib, mvBackend, buffer)
	if err != nil {
		return nil, err
	}
	vol, err := mv.Load(env, p, mvBackend, fs.cfg.MVOpCost)
	if err != nil {
		return nil, err
	}
	fs.MV = vol
	var cat image.Catalog
	if err := vol.LoadState(p, "catalog", &cat); err == nil {
		if cat.DA != nil {
			fs.Cat.DA = cat.DA
		}
		if cat.DIL != nil {
			fs.Cat.DIL = cat.DIL
		}
	}
	// Probe buffer slots.
	for _, b := range fs.Buckets.Slots() {
		v, err := udf.Open(p, b.Backend())
		if err != nil {
			continue // blank or raw parity slot: treated as free
		}
		fs.Buckets.Adopt(b, v)
		if _, burned := fs.Cat.Locate(v.ImageID()); burned {
			_ = fs.Buckets.MarkBurning(b)
			_ = fs.Buckets.MarkBurned(b)
		} else if !v.Finalized() {
			// Re-opened unsealed bucket: continue filling it.
			fs.cur = b
		}
	}
	return fs, nil
}

// Checkpoint persists MV (with catalog state) to its backend — the crash-
// consistency point.
func (fs *FS) Checkpoint(p *sim.Proc) error {
	if err := fs.MV.SaveState(p, "catalog", fs.Cat); err != nil {
		return err
	}
	_, err := fs.MV.Checkpoint(p)
	return err
}
