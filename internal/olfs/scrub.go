package olfs

import (
	"fmt"
	"time"

	"ros/internal/bucket"
	"ros/internal/image"
	"ros/internal/optical"
	"ros/internal/rack"
	"ros/internal/sched"
	"ros/internal/sim"
)

// Idle-time sector-error scanning (§4.7): "disc sector-error checking can be
// scheduled at idle times and can periodically scan all the burned disc
// arrays to check sector errors. When sector errors occur, data on the
// failed sectors can be recovered from their parity discs and the
// corresponding data discs in the same disc array ... The recovered data can
// be written to new buckets and finally burned into free disc arrays."

// RepairReport summarizes a scrub-and-repair pass over one tray.
type RepairReport struct {
	Scrub     ScrubReport
	BadDiscs  []int                  // positions whose discs failed readback
	Recovered []image.ID             // images reconstructed into fresh buckets
	Migrated  []image.ID             // readable images copied off the failed tray
	ReBurn    *sim.Completion[error] // non-nil when recovered images were queued to burn
}

// ScrubAndRepair scrubs a burned tray; if parity mismatches or unreadable
// discs are found, the affected data images are reconstructed from the
// surviving discs into new buckets and queued for re-burning onto a free
// array.
func (fs *FS) ScrubAndRepair(p *sim.Proc, tray rack.TrayID) (rep RepairReport, err error) {
	op := fs.tracer.StartOp(p, "olfs.scrub", "scrub")
	op.Annotate("tray", tray.String())
	defer func() { op.Finish(p, err) }()
	scrub, err := fs.ScrubTray(p, tray)
	rep.Scrub = scrub
	if err != nil {
		return rep, err
	}
	if len(scrub.BadStrips) == 0 {
		return rep, nil
	}
	// Probe each disc at the bad strips to find the failing positions. The
	// tray stays pinned across the probes so a concurrent fetch cannot swap
	// it out between positions.
	fs.sched.Pin(tray)
	defer fs.sched.Unpin(tray)
	gi, err := fs.fetchTray(p, tray, sched.Scrub)
	if err != nil {
		return rep, err
	}
	g := fs.lib.Groups[gi]
	onTray := fs.Cat.ImagesOnTray(tray)
	// Probe whole strips: a latent sector error can sit anywhere inside the
	// 1 MB strip that failed verification. All positions probe concurrently
	// (their discs sit in distinct drives), each admitted through the
	// group's read slots at scrub class.
	const stripLen = 1 << 20
	badAt := make([]bool, len(g.Drives))
	tctx := p.TraceContext()
	var comps []*sim.Completion[struct{}]
	for pos := 0; pos < len(g.Drives); pos++ {
		if _, ok := onTray[pos]; !ok {
			continue
		}
		pos := pos
		c := sim.NewCompletion[struct{}](fs.env)
		comps = append(comps, c)
		fs.env.Go(fmt.Sprintf("scrub-probe-d%d", pos), func(pp *sim.Proc) {
			pp.SetTraceContext(tctx)
			defer pp.SetTraceContext(nil)
			view := optical.ImageView{Drive: g.Drives[pos]}
			probe := make([]byte, stripLen)
			for _, off := range scrub.BadStrips {
				n := int64(stripLen)
				if off+n > rep.Scrub.Checked {
					n = rep.Scrub.Checked - off
				}
				if n <= 0 {
					continue
				}
				fs.sched.AcquireReadSlot(pp, sched.Scrub, gi)
				rerr := view.ReadAt(pp, probe[:n], off)
				fs.sched.ReleaseReadSlot(gi)
				if rerr != nil {
					badAt[pos] = true
					break
				}
			}
			c.Resolve(struct{}{}, nil)
		})
	}
	for _, c := range comps {
		c.Wait(p)
	}
	for pos, bad := range badAt {
		if bad {
			rep.BadDiscs = append(rep.BadDiscs, pos)
		}
	}
	// The tray is degraded — whether a disc failed outright or parity no
	// longer verifies (silent corruption). Move every data image off it: bad
	// images are reconstructed from the survivors plus parity, readable ones
	// are migrated by direct copy. The whole set re-burns onto a fresh array
	// (parity regenerates at burn time), so no image is left depending on the
	// failed tray's stale parity.
	dataN, parityPos := fs.trayLayout(onTray)
	parityAt := make(map[int]bool, len(parityPos))
	for _, pos := range parityPos {
		parityAt[pos] = true
	}
	badData := make(map[int]bool, len(rep.BadDiscs))
	for _, pos := range rep.BadDiscs {
		if pos < dataN && !parityAt[pos] {
			badData[pos] = true
		}
	}
	// Record the old placements: recovery and migration Forget each image as
	// they secure it, and if a later image fails mid-pass the forgets must be
	// rolled back — a partially-forgotten tray breaks the contiguous
	// data-then-parity layout every scrub relies on (disc contents are
	// untouched by Forget, so restoring the catalog entries is always safe).
	oldAddr := make(map[image.ID]image.DiscAddr, len(onTray))
	for _, id := range onTray {
		if a, ok := fs.Cat.Locate(id); ok {
			oldAddr[id] = a
		}
	}
	var rebirth []*bucket.Bucket
	var moved []image.ID
	for pos := 0; pos < dataN; pos++ {
		id, ok := onTray[pos]
		if !ok || parityAt[pos] {
			continue
		}
		var nb *bucket.Bucket
		var werr error
		if badData[pos] {
			nb, werr = fs.RecoverImage(p, id)
		} else {
			nb, werr = fs.migrateImage(p, id)
		}
		if werr != nil {
			for _, mid := range moved {
				fs.Cat.Place(mid, oldAddr[mid])
			}
			rep.Recovered, rep.Migrated = nil, nil
			return rep, fmt.Errorf("olfs: repair of %s: %w", id, werr)
		}
		moved = append(moved, id)
		if badData[pos] {
			rep.Recovered = append(rep.Recovered, id)
		} else {
			rep.Migrated = append(rep.Migrated, id)
		}
		rebirth = append(rebirth, nb)
	}
	// Parity images are regenerated when the set re-burns; drop their old
	// catalog locations so nothing references the retired tray.
	if len(parityPos) > 0 {
		for _, pos := range parityPos {
			fs.Cat.Forget(onTray[pos])
		}
	} else {
		for pos := dataN; pos < len(onTray); pos++ {
			if id, ok := onTray[pos]; ok {
				fs.Cat.Forget(id)
			}
		}
	}
	// Retire the tray from placement and the scrub rotation (§4.1's Failed
	// state) before queueing the re-burn, so the burn task cannot pick it.
	fs.Cat.SetDAState(tray, image.DAFailed)
	if len(rebirth) > 0 {
		for _, b := range rebirth {
			_ = fs.Buckets.MarkBurning(b)
		}
		rep.ReBurn = fs.enqueueBurn(rebirth)
		fs.m.repairs.Add(1)
	}
	return rep, nil
}

// StartScrubber launches the idle-time scrub daemon: every interval it picks
// the next burned tray (round-robin) and, when a drive group is free, scrubs
// and repairs it. Returns a stop function.
func (fs *FS) StartScrubber(interval time.Duration) func() {
	if interval <= 0 {
		interval = time.Hour
	}
	stop := false
	fs.env.GoDaemon("olfs-scrubber", func(p *sim.Proc) {
		next := 0
		for !stop {
			p.Sleep(interval)
			if stop || fs.stopped {
				return
			}
			// Only scrub when a group is idle (don't steal from burns/reads).
			idle := false
			for gi := range fs.lib.Groups {
				if fs.sched.GroupIdle(gi) {
					idle = true
					break
				}
			}
			if !idle {
				continue
			}
			trays := usedTrayList(fs)
			if len(trays) == 0 {
				continue
			}
			tray := trays[next%len(trays)]
			next++
			if _, err := fs.ScrubAndRepair(p, tray); err != nil {
				continue // scrubbing is best-effort; the next pass retries
			}
			fs.m.scrubs.Add(1)
		}
	})
	return func() { stop = true }
}

// usedTrayList returns trays in Used state, deterministically ordered.
func usedTrayList(fs *FS) []rack.TrayID {
	var out []rack.TrayID
	for k, st := range fs.Cat.DA {
		if st != image.DAUsed {
			continue
		}
		var id rack.TrayID
		if _, err := fmt.Sscanf(k, "r%d/L%d/S%d", &id.Roller, &id.Layer, &id.Slot); err == nil {
			out = append(out, id)
		}
	}
	// Insertion sort by (roller, layer desc, slot) for determinism.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && trayLess(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func trayLess(a, b rack.TrayID) bool {
	if a.Roller != b.Roller {
		return a.Roller < b.Roller
	}
	if a.Layer != b.Layer {
		return a.Layer > b.Layer
	}
	return a.Slot < b.Slot
}

// StartMVSnapshots launches the periodic MV-to-disc checkpoint daemon
// (§4.2: "MV is periodically burned into discs"). Each tick checkpoints MV
// to its RAID-1 backend and writes a burnable snapshot into the namespace.
func (fs *FS) StartMVSnapshots(interval time.Duration) func() {
	if interval <= 0 {
		interval = 24 * time.Hour
	}
	stop := false
	fs.env.GoDaemon("olfs-mvsnap", func(p *sim.Proc) {
		for !stop {
			p.Sleep(interval)
			if stop || fs.stopped {
				return
			}
			if err := fs.Checkpoint(p); err != nil {
				continue
			}
			if _, err := fs.BurnMVSnapshot(p); err != nil {
				continue
			}
			fs.m.mvSnapshots.Add(1)
		}
	})
	return func() { stop = true }
}
