package olfs_test

import (
	"bytes"
	"fmt"
	"testing"

	"ros/internal/faultinject/testkit"
	"ros/internal/image"
	"ros/internal/olfs"
	"ros/internal/rack"
	"ros/internal/sim"
)

// usedTrays scans the catalog for trays in the Used state.
func usedTrays(fs *olfs.FS) []rack.TrayID {
	var out []rack.TrayID
	for k, st := range fs.Cat.DA {
		if st != image.DAUsed {
			continue
		}
		var id rack.TrayID
		if _, err := fmt.Sscanf(k, "r%d/L%d/S%d", &id.Roller, &id.Layer, &id.Slot); err == nil {
			out = append(out, id)
		}
	}
	return out
}

// TestDAFailedTrayExcludedAndMigrated covers the scrub.go DAFailed path: when
// a scrub finds a bad disc, the tray must be retired from placement AND its
// still-readable data images must be migrated off it — previously survivors
// were stranded on the failed tray with stale parity coverage.
func TestDAFailedTrayExcludedAndMigrated(t *testing.T) {
	bed := testkit.New(t, testkit.Options{Config: func(c *olfs.Config) {
		c.AutoBurn = false
		c.RecycleAfterBurn = true // reads must come off disc, not the buffer
	}})
	bed.Run(t, func(p *sim.Proc) {
		// Two 1 MB buckets (2 data images + parity) burned onto one tray.
		var files []string
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("/mig/f%d", i)
			if err := bed.FS.WriteFile(p, name, testkit.Pat(400*1024, byte(i+1))); err != nil {
				t.Fatalf("WriteFile: %v", err)
			}
			files = append(files, name)
		}
		c, err := bed.FS.FlushAndBurn(p)
		if err != nil {
			t.Fatalf("FlushAndBurn: %v", err)
		}
		if _, err := c.Wait(p); err != nil {
			t.Fatalf("burn: %v", err)
		}
		trays := usedTrays(bed.FS)
		if len(trays) != 1 {
			t.Fatalf("used trays = %v, want exactly 1", trays)
		}
		tray := trays[0]
		imagesBefore := len(bed.FS.Cat.ImagesOnTray(tray))
		if imagesBefore != 3 {
			t.Fatalf("images on tray = %d, want 3 (2 data + 1 parity)", imagesBefore)
		}

		// Latent sector error on data disc 0 (array may still sit in drives).
		tr, _ := bed.Lib.Tray(tray)
		disc := tr.Discs
		if len(disc) == 0 {
			for _, g := range bed.Lib.Groups {
				if g.Source != nil && *g.Source == tray {
					for _, d := range g.Drives {
						if d.Disc() != nil {
							disc = append(disc, d.Disc())
						}
					}
				}
			}
		}
		disc[0].CorruptSector(8192)

		rep, err := bed.FS.ScrubAndRepair(p, tray)
		if err != nil {
			t.Fatalf("ScrubAndRepair: %v\n%s", err, bed.Replay())
		}
		if len(rep.BadDiscs) != 1 || rep.BadDiscs[0] != 0 {
			t.Fatalf("bad discs = %v, want [0]", rep.BadDiscs)
		}
		if len(rep.Recovered) != 1 {
			t.Fatalf("recovered = %v, want 1 image", rep.Recovered)
		}
		// The readable survivor (data position 1) must be migrated, not left
		// stranded on the retired tray.
		if len(rep.Migrated) != 1 {
			t.Fatalf("migrated = %v, want 1 image", rep.Migrated)
		}
		if st := bed.FS.Cat.DAState(tray); st != image.DAFailed {
			t.Fatalf("tray state = %v, want DAFailed", st)
		}
		// Nothing in the catalog still points at the failed tray.
		if left := bed.FS.Cat.ImagesOnTray(tray); len(left) != 0 {
			t.Fatalf("images still on failed tray: %v", left)
		}
		if rep.ReBurn == nil {
			t.Fatal("no re-burn queued for the moved images")
		}
		if _, err := rep.ReBurn.Wait(p); err != nil {
			t.Fatalf("re-burn: %v", err)
		}
		// The re-burn must have landed on a different tray: the failed one is
		// excluded from placement (FindEmptyTray only returns Empty trays).
		for _, id := range append(append([]image.ID{}, rep.Recovered...), rep.Migrated...) {
			addr, ok := bed.FS.Cat.Locate(id)
			if !ok {
				t.Fatalf("image %s not re-placed after re-burn", id)
			}
			if addr.Tray == tray {
				t.Fatalf("image %s re-placed on the failed tray %v", id, tray)
			}
		}
		if st := bed.FS.Cat.DAState(tray); st != image.DAFailed {
			t.Fatalf("tray state after re-burn = %v, want DAFailed (still excluded)", st)
		}
		// Every file reads back byte-for-byte through the new tray.
		for i, name := range files {
			got, err := bed.FS.ReadFile(p, name)
			if err != nil {
				t.Fatalf("read %s after migration: %v", name, err)
			}
			if !bytes.Equal(got, testkit.Pat(400*1024, byte(i+1))) {
				t.Fatalf("%s corrupt after migration", name)
			}
		}
	})
	if bed.FS.Repairs == 0 {
		t.Error("repair counter not bumped")
	}
	if open := bed.FS.Obs().OpenSpans(); open != 0 {
		t.Errorf("open spans = %d, want 0", open)
	}
}

// TestDAFailedSilentCorruptionMigratesAll: a parity mismatch with no
// readable-disc failure (silent corruption on the parity disc) must also
// retire the tray and move every data image off it.
func TestDAFailedSilentCorruptionMigratesAll(t *testing.T) {
	bed := testkit.New(t, testkit.Options{Config: func(c *olfs.Config) {
		c.AutoBurn = false
		c.RecycleAfterBurn = true
	}})
	bed.Run(t, func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			if err := bed.FS.WriteFile(p, fmt.Sprintf("/sil/f%d", i), testkit.Pat(400*1024, byte(i+1))); err != nil {
				t.Fatalf("WriteFile: %v", err)
			}
		}
		c, err := bed.FS.FlushAndBurn(p)
		if err != nil {
			t.Fatalf("FlushAndBurn: %v", err)
		}
		if _, err := c.Wait(p); err != nil {
			t.Fatalf("burn: %v", err)
		}
		tray := usedTrays(bed.FS)[0]

		// Flip payload bytes on the parity disc without marking the sector
		// bad: parity verification fails, but every disc reads fine.
		tr, _ := bed.Lib.Tray(tray)
		discs := tr.Discs
		if len(discs) == 0 {
			for _, g := range bed.Lib.Groups {
				if g.Source != nil && *g.Source == tray {
					for _, d := range g.Drives {
						if d.Disc() != nil {
							discs = append(discs, d.Disc())
						}
					}
				}
			}
		}
		// Parity sits at position dataN = 2 (2+1 layout).
		discs[2].FlipByte(8192)

		rep, err := bed.FS.ScrubAndRepair(p, tray)
		if err != nil {
			t.Fatalf("ScrubAndRepair: %v", err)
		}
		if len(rep.Scrub.BadStrips) == 0 {
			t.Fatal("scrub missed the silent corruption")
		}
		if len(rep.BadDiscs) != 0 {
			t.Fatalf("bad discs = %v, want none (silent corruption)", rep.BadDiscs)
		}
		if len(rep.Migrated) != 2 {
			t.Fatalf("migrated = %v, want both data images", rep.Migrated)
		}
		if left := bed.FS.Cat.ImagesOnTray(tray); len(left) != 0 {
			t.Fatalf("images still on failed tray: %v", left)
		}
		if rep.ReBurn == nil {
			t.Fatal("no re-burn queued")
		}
		if _, err := rep.ReBurn.Wait(p); err != nil {
			t.Fatalf("re-burn: %v", err)
		}
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("/sil/f%d", i)
			got, err := bed.FS.ReadFile(p, name)
			if err != nil {
				t.Fatalf("read %s: %v", name, err)
			}
			if !bytes.Equal(got, testkit.Pat(400*1024, byte(i+1))) {
				t.Fatalf("%s corrupt", name)
			}
		}
	})
}
