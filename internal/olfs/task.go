package olfs

import (
	"errors"
	"fmt"
	"time"

	"ros/internal/bucket"
	"ros/internal/image"
	"ros/internal/optical"
	"ros/internal/rack"
	"ros/internal/sched"
	"ros/internal/sim"
	"ros/internal/udf"
)

// burnSet is one disc array's worth of a burn group: k data images plus
// lazily generated parity images, burned onto the 12 discs of one empty
// tray (BTM + DB + MC).
type burnSet struct {
	images   []*bucket.Bucket // data images
	parity   []*bucket.Bucket // generated on first run (delayed parity, §4.7)
	tray     *rack.TrayID
	progress []burnProg // per-position progress for append-mode resume
	resumed  bool
	attempts int
	burned    bool // finished successfully
	abandoned bool // failed hard; images returned to the filled state
}

// burnTask is one burn group: one or more sets burned back-to-back under a
// single drive-group claim, so one arm trip and spin-up amortize across
// the whole group (the writepath group-commit discipline). The legacy
// pipeline is the single-set case.
type burnTask struct {
	sets     []*burnSet
	done     *sim.Completion[error]
	firstErr error // first permanent per-set failure in the group
}

// pending returns the sets still awaiting a successful burn.
func (t *burnTask) pending() []*burnSet {
	var out []*burnSet
	for _, s := range t.sets {
		if !s.burned && !s.abandoned {
			out = append(out, s)
		}
	}
	return out
}

// pendingAfter reports whether any set after index i still awaits burning.
func (t *burnTask) pendingAfter(i int) bool {
	for _, s := range t.sets[i+1:] {
		if !s.burned && !s.abandoned {
			return true
		}
	}
	return false
}

type burnProg struct {
	logical int64 // logical bytes burned so far
	payload int64 // payload bytes copied so far
	done    bool  // this position's burn completed
}

// offsetSource adapts an image backend into a BurnSource continuing at base.
type offsetSource struct {
	b    udf.Backend
	base int64
	size int64
}

func (s offsetSource) ReadAt(p *sim.Proc, buf []byte, off int64) error {
	return s.b.ReadAt(p, buf, s.base+off)
}
func (s offsetSource) Size() int64 { return s.size }

// zeroTail views a bucket backend as exactly limit payload bytes: reads past
// the limit return zeros. A recycled buffer slot can hold stale bytes from
// its previous tenant beyond the current image's payload, but the burned
// disc reads zeros past the image's watermark — so parity must be computed
// over zeros there too, or scrub verification of any mixed-length set would
// flag phantom mismatches forever.
type zeroTail struct {
	b     image.Backend
	limit int64
}

func (z zeroTail) ReadAt(p *sim.Proc, buf []byte, off int64) error {
	n := int64(len(buf))
	keep := int64(0)
	if off < z.limit {
		keep = z.limit - off
		if keep > n {
			keep = n
		}
		if err := z.b.ReadAt(p, buf[:keep], off); err != nil {
			return err
		}
	}
	for i := keep; i < n; i++ {
		buf[i] = 0
	}
	return nil
}

func (z zeroTail) WriteAt(p *sim.Proc, buf []byte, off int64) error {
	return z.b.WriteAt(p, buf, off)
}

func (z zeroTail) Size() int64 { return z.limit }

// usedBytes returns the payload size of an image bucket, 2 KB aligned.
func usedBytes(b *bucket.Bucket) int64 {
	u := b.Used()
	if r := u % udf.BlockSize; r != 0 {
		u += udf.BlockSize - r
	}
	return u
}

// burnDaemon consumes the burn queue; each task runs as its own process so
// multiple drive groups can burn concurrently.
func (fs *FS) burnDaemon(p *sim.Proc) {
	for {
		t, ok := fs.burnQ.Pop(p)
		if !ok {
			return
		}
		task := t
		fs.env.Go("olfs-burn", func(tp *sim.Proc) {
			fs.runBurnTask(tp, task)
		})
	}
}

// runBurnTask drives one burn group to completion (or failure),
// re-queueing itself after an interrupt. Each run segment (initial,
// resumed, retried) is one olfs.burn.latency span, so the histogram
// records real drive-group occupancy rather than end-to-end task age. The
// group claims its drive group ONCE and burns its sets back-to-back; for
// single-set groups (the legacy and default discipline) the pipeline is
// event-for-event the pre-batching behavior.
func (fs *FS) runBurnTask(p *sim.Proc, t *burnTask) {
	sp := fs.obs.StartSpan("olfs.burn.latency")
	defer sp.End()
	// Each run segment is its own trace; segments that end in a requeue
	// (interrupt resume, hard-fail retry) are marked as retried so tail
	// sampling always captures them.
	op := fs.tracer.StartOp(p, "olfs.burn", "burn")
	pending := t.pending()
	nimg := 0
	for _, s := range pending {
		nimg += len(s.images)
	}
	op.Annotate("images", fmt.Sprintf("%d", nimg))
	if len(t.sets) > 1 {
		op.Annotate("sets", fmt.Sprintf("%d", len(pending)))
	}
	resumedAny := false
	for _, s := range pending {
		if s.resumed {
			// This run continues an interrupted burn in append mode. Clear
			// the flag now: if this run hard-fails, the retry restarts from
			// scratch on a fresh tray and must not inherit resume bookkeeping.
			s.resumed = false
			fs.m.burnResumes.Add(1)
			resumedAny = true
		}
	}
	if resumedAny {
		op.Annotate("resumed", "true")
	}
	var opErr error
	defer func() { op.Finish(p, opErr) }()

	// Parity + blank-tray reservation for every pending set, before any
	// drive-group claim (legacy order). A set that cannot get parity or a
	// tray is abandoned; the rest of the group still burns.
	for _, s := range pending {
		if s.parity == nil && fs.cfg.ParityDiscs > 0 {
			if err := fs.generateParity(p, s); err != nil {
				fs.failBurnSet(t, s, err)
				continue
			}
		}
		if s.tray == nil {
			tray, ok := fs.Cat.FindEmptyTray(fs.lib)
			if !ok {
				fs.failBurnSet(t, s, ErrNoBlankTray)
				continue
			}
			s.tray = &tray
			// Reserve immediately ("DAindex_i will be modified to Used when
			// disc array i is used", §4.1) so a concurrent task can't pick
			// it too.
			fs.Cat.SetDAState(tray, image.DAUsed)
		}
	}
	pending = t.pending()
	if len(pending) == 0 {
		opErr = t.firstErr
		t.done.Resolve(opErr, opErr)
		return
	}
	op.Annotate("tray", pending[0].tray.String())

	// One drive-group claim for the whole group.
	g := fs.sched.AcquireBurn(p, *pending[0].tray)
	gi := g.Group
	if g.Evict {
		fs.unmountGroup(gi)
		if err := fs.lib.UnloadArray(p, gi, nil); err != nil {
			fs.sched.Release(gi)
			opErr = err
			fs.failPending(t, err)
			return
		}
	}

	for si, s := range t.sets {
		if s.burned || s.abandoned {
			continue
		}
		last := !t.pendingAfter(si)
		if err := fs.lib.LoadArray(p, *s.tray, gi); err != nil {
			fs.sched.Release(gi)
			opErr = err
			fs.failPending(t, err)
			return
		}
		interrupted, firstErr := fs.burnSetDiscs(p, s, gi)
		fs.unmountGroup(gi)
		unloadErr := fs.lib.UnloadArray(p, gi, nil)
		released := false
		if last {
			// Legacy release point: immediately after the final unload,
			// before outcome handling. Non-final sets keep the claim so the
			// group's remaining trays burn without re-arbitration.
			fs.sched.Release(gi)
			released = true
		}
		if unloadErr != nil && firstErr == nil {
			firstErr = unloadErr
		}
		switch {
		case firstErr != nil:
			// Hard failure: mark the tray Failed and retry the whole
			// remaining group once on a new tray. An interrupt observed in
			// the same run still counts (the preemption happened), but
			// resume bookkeeping must not leak into the retry: the fresh
			// tray restarts every disc from scratch.
			if interrupted {
				fs.m.interruptedBs.Add(1)
			}
			fs.Cat.SetDAState(*s.tray, image.DAFailed)
			fs.env.Emit(sim.KindBurnFail, p.Name(), s.tray.String())
			s.tray = nil
			s.progress = nil
			s.resumed = false
			s.attempts++
			if s.attempts < 2 {
				op.Retry()
				if !released {
					fs.sched.Release(gi)
				}
				fs.burnQ.Push(t)
				return
			}
			fs.failBurnSet(t, s, firstErr)
			if last {
				opErr = t.firstErr
				t.done.Resolve(opErr, opErr)
				return
			}
		case interrupted:
			// A fetch preempted us (§4.8 interrupt policy): requeue to
			// resume with append-mode burning on the same tray.
			fs.m.interruptedBs.Add(1)
			fs.env.Emit(sim.KindBurnInterrupt, p.Name(), s.tray.String())
			op.Retry()
			s.resumed = true
			if !released {
				fs.sched.Release(gi)
			}
			fs.burnQ.Push(t)
			return
		default:
			fs.env.Emit(sim.KindBurnFinish, p.Name(), s.tray.String())
			fs.finishBurnSet(p, s)
			s.burned = true
			if fs.wp.VerifyEnabled() {
				tray := *s.tray
				fs.env.Go("olfs-burn-verify", func(vp *sim.Proc) {
					fs.verifyBurn(vp, tray)
				})
			}
			if last {
				opErr = t.firstErr
				t.done.Resolve(opErr, opErr)
				return
			}
		}
	}
}

// burnSetDiscs burns one set's images onto the tray loaded in group gi:
// all discs in parallel with staggered starts (Fig 9). It reports whether
// the burn was interrupted and the first hard error.
func (fs *FS) burnSetDiscs(p *sim.Proc, s *burnSet, gi int) (bool, error) {
	g := fs.lib.Groups[gi]
	all := append(append([]*bucket.Bucket(nil), s.images...), s.parity...)
	if s.progress == nil {
		s.progress = make([]burnProg, len(all))
	}
	type result struct {
		rep optical.BurnReport
		err error
	}
	comps := make([]*sim.Completion[result], len(all))
	for i := range all {
		i := i
		img := all[i]
		comps[i] = sim.NewCompletion[result](fs.env)
		c := comps[i]
		// Hand the burn trace to each per-disc process: their optical.burn
		// spans nest under this task's olfs.burn span, and every per-disc
		// process is awaited below, so no span outlives the trace.
		tctx := p.TraceContext()
		fs.env.Go(fmt.Sprintf("burn-%s-d%d", s.tray, i), func(bp *sim.Proc) {
			bp.SetTraceContext(tctx)
			defer bp.SetTraceContext(nil)
			bp.Sleep(time.Duration(i) * fs.cfg.BurnStagger)
			pr := &s.progress[i]
			if pr.done {
				c.Resolve(result{}, nil) // this disc already finished pre-interrupt
				return
			}
			payload := usedBytes(img)
			src := offsetSource{b: img.Backend(), base: pr.payload, size: maxI64(0, payload-pr.payload)}
			// LogicalBytes 0 lets the drive size the track itself: the full
			// capacity for a fresh disc, or the remaining capacity net of the
			// append-mode track-metadata zone when resuming. (Requesting
			// discCap-pr.logical here used to overshoot the disc by exactly
			// TrackMetaZone on every resume, turning each §4.8 resume into an
			// ErrDiscFull hard failure.)
			rep, err := g.Drives[i].Burn(bp, src, optical.BurnOptions{
				Append: pr.logical > 0,
			})
			pr.logical += rep.LogicalBytes
			pr.payload += rep.PayloadBytes
			if err == nil {
				pr.done = true
			}
			c.Resolve(result{rep: rep}, err)
		})
	}
	interrupted := false
	var firstErr error
	for _, c := range comps {
		r, err := c.Wait(p)
		_ = r
		if err != nil {
			if errors.Is(err, optical.ErrBurnAborted) {
				interrupted = true
			} else if firstErr == nil {
				firstErr = err
			}
		}
	}
	return interrupted, firstErr
}

// verifyBurn read-back-scrubs a freshly burned tray on the depth-1 verify
// pipeline, so verification of group k overlaps the burn of group k+1 on
// idle drives without verify jobs piling up.
func (fs *FS) verifyBurn(p *sim.Proc, tray rack.TrayID) {
	fs.wp.AcquireVerify(p)
	defer fs.wp.ReleaseVerify()
	start := p.Now()
	rep, err := fs.ScrubTray(p, tray)
	fs.wp.NoteVerify(start, p.Now(), err == nil && len(rep.BadStrips) == 0, err)
}

// generateParity allocates parity slots and computes P (and Q) across the
// data images (DIM, §4.7).
func (fs *FS) generateParity(p *sim.Proc, s *burnSet) (err error) {
	sp := fs.obs.StartSpan("olfs.parity.latency")
	defer sp.End()
	op := fs.tracer.StartOp(p, "olfs.parity", "burn")
	defer func() { op.Finish(p, err) }()
	length := int64(0)
	data := make([]image.Backend, len(s.images))
	for i, b := range s.images {
		data[i] = zeroTail{b: b.Backend(), limit: usedBytes(b)}
		if u := usedBytes(b); u > length {
			length = u
		}
	}
	if length == 0 {
		length = udf.BlockSize
	}
	// On any failure the half-built parity buckets are regenerable: discard
	// them so the slots return to the pool instead of leaking as Open.
	discard := func() {
		for _, b := range s.parity {
			_ = fs.Buckets.Discard(b)
		}
		s.parity = nil
	}
	for i := 0; i < fs.cfg.ParityDiscs; i++ {
		pb, err := fs.Buckets.OpenRaw(p, length)
		if err != nil {
			discard()
			return err
		}
		s.parity = append(s.parity, pb)
	}
	par := make([]image.Backend, len(s.parity))
	for i, b := range s.parity {
		par[i] = b.Backend()
	}
	if err := image.GenerateParity(p, data, par, length); err != nil {
		discard()
		return err
	}
	for _, b := range s.parity {
		if err := fs.Buckets.Seal(p, b); err != nil {
			discard()
			return err
		}
		if err := fs.Buckets.MarkBurning(b); err != nil {
			discard()
			return err
		}
	}
	return nil
}

// finishBurnSet records catalog state, returns the set's admission charges
// to the write-path token bucket, and releases buffer copies.
func (fs *FS) finishBurnSet(p *sim.Proc, s *burnSet) {
	all := append(append([]*bucket.Bucket(nil), s.images...), s.parity...)
	for i, b := range all {
		fs.Cat.Place(b.ID, image.DiscAddr{
			Tray: *s.tray, Pos: i, Len: usedBytes(b),
			Parity: i >= len(s.images),
		})
		_ = fs.Buckets.MarkBurned(b)
		// Release charges before Recycle: recycling clears the bucket's ID.
		fs.wp.ReleaseBucket(b.ID)
		if fs.cfg.RecycleAfterBurn {
			_ = fs.Buckets.Recycle(p, b)
		}
	}
	fs.Cat.SetDAState(*s.tray, image.DAUsed)
	_ = fs.MV.SaveState(p, "catalog", fs.Cat)
}

// failBurnSet returns a set's data images to the filled state (they hold
// the only copy of user data and stay readable from the buffer — their
// admission charges stay held, since they still occupy the buffer) and
// records the group's first error. Parity buckets are discarded, not kept:
// they are regenerated on any later burn, and leaving them Filled would
// leak buffer slots that no flush ever collects.
func (fs *FS) failBurnSet(t *burnTask, s *burnSet, err error) {
	for _, b := range s.images {
		if b.State() == bucket.StateBurning {
			_ = fs.Buckets.MarkBurnFailed(b)
		}
	}
	for _, b := range s.parity {
		_ = fs.Buckets.Discard(b)
	}
	s.parity = nil
	s.abandoned = true
	if t.firstErr == nil {
		t.firstErr = err
	}
}

// failPending abandons every not-yet-burned set (a claim or mechanical
// load failed mid-group) and resolves the task.
func (fs *FS) failPending(t *burnTask, err error) {
	for _, s := range t.sets {
		if !s.burned && !s.abandoned {
			fs.failBurnSet(t, s, err)
		}
	}
	t.done.Resolve(t.firstErr, t.firstErr)
}

// PrefetchTray explicitly loads a tray into drive group gi (maintenance
// interface), swapping out any idle array first. Fails if the group is
// burning.
func (fs *FS) PrefetchTray(p *sim.Proc, tray rack.TrayID, gi int) error {
	g, err := fs.lib.Group(gi)
	if err != nil {
		return err
	}
	if g.Source != nil && *g.Source == tray {
		return nil
	}
	if g.AnyBurning() || !fs.sched.TryClaim(gi) {
		return fmt.Errorf("olfs: group %d busy", gi)
	}
	defer fs.sched.Release(gi)
	// If another group holds the requested tray, put that array back first.
	for ogi, og := range fs.lib.Groups {
		if ogi == gi || og.Source == nil || *og.Source != tray {
			continue
		}
		if og.AnyBurning() || !fs.sched.TryClaim(ogi) {
			return fmt.Errorf("olfs: tray %v pinned in busy group %d", tray, ogi)
		}
		fs.unmountGroup(ogi)
		err := fs.lib.UnloadArray(p, ogi, nil)
		fs.sched.Release(ogi)
		if err != nil {
			return err
		}
	}
	if g.Loaded() {
		fs.unmountGroup(gi)
		if err := fs.lib.UnloadArray(p, gi, nil); err != nil {
			return err
		}
	}
	return fs.lib.LoadArray(p, tray, gi)
}

// fetchTray brings the disc array holding requested data into a drive group
// (FTM). Concurrent fetches of the same tray coalesce into one mechanical
// load; the tray's scheduler demand stays pinned from first request until
// every coalesced consumer has its group index, so victim selection can
// never swap the array out from under queued waiters. Returns the group
// index now holding the tray.
func (fs *FS) fetchTray(p *sim.Proc, tray rack.TrayID, class sched.Class) (gi int, err error) {
	op := fs.tracer.StartOp(p, "olfs.fetch", class.String())
	op.Annotate("tray", tray.String())
	defer func() { op.Finish(p, err) }()
	key := tray.String()
	fs.sched.Pin(tray)
	defer fs.sched.Unpin(tray)
	joinFails := 0
	for {
		// Already loaded?
		for gi, g := range fs.lib.Groups {
			if g.Source != nil && *g.Source == tray {
				return gi, nil
			}
		}
		if c, ok := fs.fetches[key]; ok {
			// Coalesce with the in-flight fetch, then re-verify.
			fs.fetchJoins[key]++
			fs.m.coalesced.Add(1)
			if _, err := c.Wait(p); err != nil {
				// The winner's mechanical load failed, but that error is the
				// winner's, not ours: a fresh caller would simply try the
				// fetch itself. Loop once more and become (or join) the next
				// winner; give up only if that attempt fails too.
				joinFails++
				if joinFails > 1 {
					return 0, err
				}
				fs.m.joinRetries.Add(1)
			}
			continue
		}
		c := sim.NewCompletion[int](fs.env)
		fs.fetches[key] = c
		gi, err = fs.runFetch(p, tray, class)
		fs.m.batchSize.Observe(int64(1 + fs.fetchJoins[key]))
		delete(fs.fetchJoins, key)
		delete(fs.fetches, key)
		c.Resolve(gi, err)
		return gi, err
	}
}

// runFetch performs the mechanical fetch: the scheduler picks the group (and
// victim, if a swap is needed) per the configured policy, this side does the
// mechanical work. The §4.8 all-drives-burning read policy is applied by the
// scheduler's starvation hook.
func (fs *FS) runFetch(p *sim.Proc, tray rack.TrayID, class sched.Class) (int, error) {
	fs.m.fetchTasks.Add(1)
	sp := fs.obs.StartSpan("olfs.fetch.latency")
	defer sp.End()
	defer fs.env.Emit(sim.KindFetch, p.Name(), tray.String())
	g := fs.sched.AcquireFetch(p, class, tray)
	gi := g.Group
	if g.Hit {
		// Another task loaded the tray while we were queued.
		return gi, nil
	}
	var err error
	if g.Evict {
		// Table 1 row 5, ~155 s: unload the victim, then load.
		fs.unmountGroup(gi)
		err = fs.lib.UnloadArray(p, gi, nil)
	}
	if err == nil {
		// Table 1 row 4, ~70 s: plain load into the (now) empty group.
		err = fs.lib.LoadArray(p, tray, gi)
	}
	fs.sched.Release(gi)
	if err != nil {
		return 0, err
	}
	return gi, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
