package olfs

import (
	"fmt"
	"sort"

	"ros/internal/bucket"
	"ros/internal/faultinject"
	"ros/internal/image"
	"ros/internal/obs"
	"ros/internal/optical"
	"ros/internal/rack"
	"ros/internal/sched"
	"ros/internal/sim"
	"ros/internal/udf"
)

// ScrubReport summarizes a tray scrub (§4.7: "disc sector-error checking can
// be scheduled at idle times and can periodically scan all the burned disc
// arrays").
type ScrubReport struct {
	Tray       rack.TrayID
	Checked    int64   // bytes verified per disc
	BadStrips  []int64 // strip offsets failing parity/readback
	DiscErrors int     // discs with injected sector errors encountered
}

// trayLayout classifies a tray's cataloged images by role. Parity is burned
// immediately after the data images, so the first parity position is also
// the physical data width of the set — even when data entries have since
// been migrated away (WORM discs keep their bits, so the physical layout is
// fixed at burn time). Catalogs rebuilt by namespace recovery carry no
// parity entries; those fall back to the contiguous-layout arithmetic.
func (fs *FS) trayLayout(onTray map[int]image.ID) (dataN int, parityPos []int) {
	for pos, id := range onTray {
		if a, ok := fs.Cat.Locate(id); ok && a.Parity {
			parityPos = append(parityPos, pos)
		}
	}
	sort.Ints(parityPos)
	if len(parityPos) > 0 {
		return parityPos[0], parityPos
	}
	return len(onTray) - fs.cfg.ParityDiscs, nil
}

// readGate adapts the scheduler's per-group read slots to image.Gate, so
// parallel scrub/recover strip crews are admitted chunk-by-chunk and cannot
// starve interactive readers of the same drive group.
type readGate struct {
	s     *sched.Scheduler
	class sched.Class
	gi    int
}

func (g readGate) Acquire(p *sim.Proc) { g.s.AcquireReadSlot(p, g.class, g.gi) }
func (g readGate) Release()            { g.s.ReleaseReadSlot(g.gi) }

// trayBackends fetches the tray and returns the holding group's index, the
// per-position image views and payload length. Callers should Pin the tray
// first so the group assignment stays valid for the whole maintenance op.
func (fs *FS) trayBackends(p *sim.Proc, tray rack.TrayID) (int, []image.Backend, map[int]image.ID, int64, error) {
	gi, err := fs.fetchTray(p, tray, sched.Scrub)
	if err != nil {
		return 0, nil, nil, 0, err
	}
	g := fs.lib.Groups[gi]
	onTray := fs.Cat.ImagesOnTray(tray)
	length := int64(0)
	backends := make([]image.Backend, len(g.Drives))
	for pos := range g.Drives {
		backends[pos] = optical.ImageView{Drive: g.Drives[pos]}
		if id, ok := onTray[pos]; ok {
			if addr, ok := fs.Cat.Locate(id); ok && addr.Len > length {
				length = addr.Len
			}
		}
	}
	if length == 0 {
		length = udf.BlockSize
	}
	return gi, backends, onTray, length, nil
}

// ScrubTray verifies cross-disc parity for a burned tray, reading every disc
// through the drives. Sector errors surface as bad strips.
func (fs *FS) ScrubTray(p *sim.Proc, tray rack.TrayID) (rep ScrubReport, err error) {
	op := fs.tracer.StartOp(p, "olfs.scrub", "scrub")
	op.Annotate("tray", tray.String())
	defer func() { op.Finish(p, err) }()
	rep = ScrubReport{Tray: tray}
	if fs.Cat.DAState(tray) != image.DAUsed {
		return rep, fmt.Errorf("olfs: tray %v is not a burned array", tray)
	}
	fs.sched.Pin(tray)
	defer fs.sched.Unpin(tray)
	gi, backends, onTray, length, err := fs.trayBackends(p, tray)
	if err != nil {
		return rep, err
	}
	k := fs.cfg.DataDiscs
	dataN, parityPos := fs.trayLayout(onTray)
	if dataN < 1 || dataN > k {
		return rep, fmt.Errorf("olfs: tray %v holds %d images, inconsistent with %d+%d layout",
			tray, len(onTray), k, fs.cfg.ParityDiscs)
	}
	// Verify over the physical set layout: the data strip views span the full
	// burn-time data width regardless of which entries the catalog still
	// tracks (parity was computed over those very bits).
	data := backends[:dataN]
	var parity []image.Backend
	if len(parityPos) > 0 {
		for _, pos := range parityPos {
			parity = append(parity, backends[pos])
		}
	} else {
		parity = backends[dataN : dataN+fs.cfg.ParityDiscs]
	}
	vsp := obs.StartChild(p, "optical.verify")
	vsp.Annotate("bytes", fmt.Sprintf("%d", length))
	if ferr := faultinject.Check(p, faultinject.PointOpticalVerify, tray.String()); ferr != nil {
		vsp.Fail(p, ferr)
		return rep, ferr
	}
	var bad []int64
	if fs.cfg.SerialRead {
		bad, err = image.VerifyParity(p, data, parity, length)
	} else {
		bad, err = image.VerifyParityParallel(p, data, parity, length,
			readGate{s: fs.sched, class: sched.Scrub, gi: gi})
	}
	if err != nil {
		vsp.Fail(p, err)
		return rep, err
	}
	vsp.Annotate("bad_strips", fmt.Sprintf("%d", len(bad)))
	vsp.End(p)
	rep.Checked = length
	rep.BadStrips = bad
	return rep, nil
}

// RecoverImage reconstructs a data image whose disc is lost or unreadable,
// using the surviving discs of its tray and the parity image(s). The
// recovered image lands in a fresh buffer bucket in the Filled state so it
// can be re-burned to a free disc array (§4.7: "The recovered data can be
// written to new buckets and finally burned into free disc arrays"). The old
// disc location is forgotten.
func (fs *FS) RecoverImage(p *sim.Proc, id image.ID) (nb *bucket.Bucket, err error) {
	op := fs.tracer.StartOp(p, "olfs.recover", "scrub")
	op.Annotate("image", id.String())
	defer func() { op.Finish(p, err) }()
	addr, ok := fs.Cat.Locate(id)
	if !ok {
		return nil, fmt.Errorf("%w: image %s not on disc", ErrPartMissing, id)
	}
	fs.sched.Pin(addr.Tray)
	defer fs.sched.Unpin(addr.Tray)
	gi, backends, onTray, length, err := fs.trayBackends(p, addr.Tray)
	if err != nil {
		return nil, err
	}
	dataN, parityPos := fs.trayLayout(onTray)
	if addr.Parity || addr.Pos >= dataN {
		return nil, fmt.Errorf("olfs: %s is a parity image; regenerate instead", id)
	}
	data := make([]image.Backend, dataN)
	for i := 0; i < dataN; i++ {
		if i != addr.Pos {
			data[i] = backends[i]
		}
	}
	var parity []image.Backend
	if len(parityPos) > 0 {
		for _, pos := range parityPos {
			parity = append(parity, backends[pos])
		}
	} else {
		parity = backends[dataN : dataN+fs.cfg.ParityDiscs]
	}
	nb, err = fs.Buckets.OpenRaw(p, length)
	if err != nil {
		return nil, err
	}
	out := make([]image.Backend, dataN)
	out[addr.Pos] = nb.Backend()
	if fs.cfg.SerialRead {
		err = image.Recover(p, data, parity, out, length)
	} else {
		// The lost disc is usually readable outside its failed sectors:
		// hand its direct view to the sector-granular fallback so stripes
		// with non-aligned LSEs across discs still recover.
		shadow := make([]image.Backend, dataN)
		shadow[addr.Pos] = backends[addr.Pos]
		err = image.RecoverParallel(p, data, shadow, parity, out, length,
			readGate{s: fs.sched, class: sched.Scrub, gi: gi})
	}
	if err != nil {
		_ = fs.Buckets.Discard(nb)
		return nil, err
	}
	// The recovered bytes are a UDF image: adopt them so reads resolve.
	vol, err := udf.Open(p, nb.Backend())
	if err != nil {
		_ = fs.Buckets.Discard(nb)
		return nil, fmt.Errorf("olfs: recovered image does not parse: %w", err)
	}
	if image.ID(vol.ImageID()) != id {
		_ = fs.Buckets.Discard(nb)
		return nil, fmt.Errorf("olfs: recovered image identity mismatch: got %s want %s",
			image.ID(vol.ImageID()), id)
	}
	fs.Buckets.Adopt(nb, vol)
	fs.Cat.Forget(id)
	return nb, nil
}

// migrateImage copies a still-readable data image off a degraded tray into a
// fresh buffer bucket by direct read (no parity math), verifying that the
// copy parses as a UDF image with the same identity. The old disc location is
// forgotten so the retired tray drops out of the catalog.
func (fs *FS) migrateImage(p *sim.Proc, id image.ID) (nb *bucket.Bucket, err error) {
	op := fs.tracer.StartOp(p, "olfs.migrate", "scrub")
	op.Annotate("image", id.String())
	defer func() { op.Finish(p, err) }()
	addr, ok := fs.Cat.Locate(id)
	if !ok {
		return nil, fmt.Errorf("%w: image %s not on disc", ErrPartMissing, id)
	}
	fs.sched.Pin(addr.Tray)
	defer fs.sched.Unpin(addr.Tray)
	gi, err := fs.fetchTray(p, addr.Tray, sched.Scrub)
	if err != nil {
		return nil, err
	}
	view := optical.ImageView{Drive: fs.lib.Groups[gi].Drives[addr.Pos]}
	nb, err = fs.Buckets.OpenRaw(p, addr.Len)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 1<<20)
	dst := nb.Backend()
	for off := int64(0); off < addr.Len; off += int64(len(buf)) {
		n := int64(len(buf))
		if off+n > addr.Len {
			n = addr.Len - off
		}
		if err := view.ReadAt(p, buf[:n], off); err != nil {
			_ = fs.Buckets.Discard(nb)
			return nil, err
		}
		if err := dst.WriteAt(p, buf[:n], off); err != nil {
			_ = fs.Buckets.Discard(nb)
			return nil, err
		}
	}
	vol, err := udf.Open(p, nb.Backend())
	if err != nil {
		_ = fs.Buckets.Discard(nb)
		return nil, fmt.Errorf("olfs: migrated image does not parse: %w", err)
	}
	if image.ID(vol.ImageID()) != id {
		_ = fs.Buckets.Discard(nb)
		return nil, fmt.Errorf("olfs: migrated image identity mismatch: got %s want %s",
			image.ID(vol.ImageID()), id)
	}
	fs.Buckets.Adopt(nb, vol)
	fs.Cat.Forget(id)
	return nb, nil
}

// RegenerateParity rebuilds a tray's parity image(s) in the buffer from its
// surviving data discs (for re-burning after parity-disc loss).
func (fs *FS) RegenerateParity(p *sim.Proc, tray rack.TrayID) ([]*bucket.Bucket, error) {
	fs.sched.Pin(tray)
	defer fs.sched.Unpin(tray)
	_, backends, onTray, length, err := fs.trayBackends(p, tray)
	if err != nil {
		return nil, err
	}
	dataN, _ := fs.trayLayout(onTray)
	if dataN < 1 {
		return nil, fmt.Errorf("olfs: tray %v has no data images", tray)
	}
	var out []*bucket.Bucket
	var pbs []image.Backend
	discard := func() {
		for _, nb := range out {
			_ = fs.Buckets.Discard(nb)
		}
	}
	for i := 0; i < fs.cfg.ParityDiscs; i++ {
		nb, err := fs.Buckets.OpenRaw(p, length)
		if err != nil {
			discard()
			return nil, err
		}
		out = append(out, nb)
		pbs = append(pbs, nb.Backend())
	}
	if err := image.GenerateParity(p, backends[:dataN], pbs, length); err != nil {
		discard()
		return nil, err
	}
	for _, nb := range out {
		if err := fs.Buckets.Seal(p, nb); err != nil {
			discard()
			return nil, err
		}
	}
	return out, nil
}
