package olfs

import (
	"fmt"

	"ros/internal/bucket"
	"ros/internal/image"
	"ros/internal/obs"
	"ros/internal/optical"
	"ros/internal/rack"
	"ros/internal/sched"
	"ros/internal/sim"
	"ros/internal/udf"
)

// ScrubReport summarizes a tray scrub (§4.7: "disc sector-error checking can
// be scheduled at idle times and can periodically scan all the burned disc
// arrays").
type ScrubReport struct {
	Tray       rack.TrayID
	Checked    int64   // bytes verified per disc
	BadStrips  []int64 // strip offsets failing parity/readback
	DiscErrors int     // discs with injected sector errors encountered
}

// trayBackends fetches the tray and returns the per-position image views and
// payload length.
func (fs *FS) trayBackends(p *sim.Proc, tray rack.TrayID) ([]image.Backend, map[int]image.ID, int64, error) {
	gi, err := fs.fetchTray(p, tray, sched.Scrub)
	if err != nil {
		return nil, nil, 0, err
	}
	g := fs.lib.Groups[gi]
	onTray := fs.Cat.ImagesOnTray(tray)
	length := int64(0)
	backends := make([]image.Backend, len(g.Drives))
	for pos := range g.Drives {
		backends[pos] = optical.ImageView{Drive: g.Drives[pos]}
		if id, ok := onTray[pos]; ok {
			if addr, ok := fs.Cat.Locate(id); ok && addr.Len > length {
				length = addr.Len
			}
		}
	}
	if length == 0 {
		length = udf.BlockSize
	}
	return backends, onTray, length, nil
}

// ScrubTray verifies cross-disc parity for a burned tray, reading every disc
// through the drives. Sector errors surface as bad strips.
func (fs *FS) ScrubTray(p *sim.Proc, tray rack.TrayID) (rep ScrubReport, err error) {
	op := fs.tracer.StartOp(p, "olfs.scrub", "scrub")
	op.Annotate("tray", tray.String())
	defer func() { op.Finish(p, err) }()
	rep = ScrubReport{Tray: tray}
	if fs.Cat.DAState(tray) != image.DAUsed {
		return rep, fmt.Errorf("olfs: tray %v is not a burned array", tray)
	}
	backends, onTray, length, err := fs.trayBackends(p, tray)
	if err != nil {
		return rep, err
	}
	k := fs.cfg.DataDiscs
	nImgs := len(onTray)
	dataN := nImgs - fs.cfg.ParityDiscs
	if dataN < 1 || dataN > k {
		return rep, fmt.Errorf("olfs: tray %v holds %d images, inconsistent with %d+%d layout",
			tray, nImgs, k, fs.cfg.ParityDiscs)
	}
	data := backends[:dataN]
	parity := backends[dataN : dataN+fs.cfg.ParityDiscs]
	vsp := obs.StartChild(p, "optical.verify")
	vsp.Annotate("bytes", fmt.Sprintf("%d", length))
	bad, err := image.VerifyParity(p, data, parity, length)
	if err != nil {
		vsp.Fail(p, err)
		return rep, err
	}
	vsp.Annotate("bad_strips", fmt.Sprintf("%d", len(bad)))
	vsp.End(p)
	rep.Checked = length
	rep.BadStrips = bad
	return rep, nil
}

// RecoverImage reconstructs a data image whose disc is lost or unreadable,
// using the surviving discs of its tray and the parity image(s). The
// recovered image lands in a fresh buffer bucket in the Filled state so it
// can be re-burned to a free disc array (§4.7: "The recovered data can be
// written to new buckets and finally burned into free disc arrays"). The old
// disc location is forgotten.
func (fs *FS) RecoverImage(p *sim.Proc, id image.ID) (nb *bucket.Bucket, err error) {
	op := fs.tracer.StartOp(p, "olfs.recover", "scrub")
	op.Annotate("image", id.String())
	defer func() { op.Finish(p, err) }()
	addr, ok := fs.Cat.Locate(id)
	if !ok {
		return nil, fmt.Errorf("%w: image %s not on disc", ErrPartMissing, id)
	}
	backends, onTray, length, err := fs.trayBackends(p, addr.Tray)
	if err != nil {
		return nil, err
	}
	dataN := len(onTray) - fs.cfg.ParityDiscs
	if addr.Pos >= dataN {
		return nil, fmt.Errorf("olfs: %s is a parity image; regenerate instead", id)
	}
	data := make([]image.Backend, dataN)
	for i := 0; i < dataN; i++ {
		if i != addr.Pos {
			data[i] = backends[i]
		}
	}
	parity := backends[dataN : dataN+fs.cfg.ParityDiscs]
	nb, err = fs.Buckets.OpenRaw(p, length)
	if err != nil {
		return nil, err
	}
	out := make([]image.Backend, dataN)
	out[addr.Pos] = nb.Backend()
	if err := image.Recover(p, data, parity, out, length); err != nil {
		return nil, err
	}
	// The recovered bytes are a UDF image: adopt them so reads resolve.
	vol, err := udf.Open(p, nb.Backend())
	if err != nil {
		return nil, fmt.Errorf("olfs: recovered image does not parse: %w", err)
	}
	if image.ID(vol.ImageID()) != id {
		return nil, fmt.Errorf("olfs: recovered image identity mismatch: got %s want %s",
			image.ID(vol.ImageID()), id)
	}
	fs.Buckets.Adopt(nb, vol)
	fs.Cat.Forget(id)
	return nb, nil
}

// RegenerateParity rebuilds a tray's parity image(s) in the buffer from its
// surviving data discs (for re-burning after parity-disc loss).
func (fs *FS) RegenerateParity(p *sim.Proc, tray rack.TrayID) ([]*bucket.Bucket, error) {
	backends, onTray, length, err := fs.trayBackends(p, tray)
	if err != nil {
		return nil, err
	}
	dataN := len(onTray) - fs.cfg.ParityDiscs
	if dataN < 1 {
		return nil, fmt.Errorf("olfs: tray %v has no data images", tray)
	}
	var out []*bucket.Bucket
	var pbs []image.Backend
	for i := 0; i < fs.cfg.ParityDiscs; i++ {
		nb, err := fs.Buckets.OpenRaw(p, length)
		if err != nil {
			return nil, err
		}
		out = append(out, nb)
		pbs = append(pbs, nb.Backend())
	}
	if err := image.GenerateParity(p, backends[:dataN], pbs, length); err != nil {
		return nil, err
	}
	for _, nb := range out {
		if err := fs.Buckets.Seal(p, nb); err != nil {
			return nil, err
		}
	}
	return out, nil
}
