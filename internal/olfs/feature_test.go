package olfs

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"ros/internal/image"
	"ros/internal/optical"
	"ros/internal/rack"
	"ros/internal/sim"
)

func TestDirectIngestMode(t *testing.T) {
	tb := newBed(t, func(c *Config) { c.AutoBurn = false })
	data := pat(8<<20, 3) // 8 MB across multiple 1 MB buckets
	var ackLatency time.Duration
	tb.run(t, func(p *sim.Proc) {
		start := p.Now()
		if err := tb.fs.DirectIngest(p, "/direct/big.bin", data); err != nil {
			t.Fatalf("DirectIngest: %v", err)
		}
		ackLatency = p.Now() - start
		if err := tb.fs.DirectDrain(p); err != nil {
			t.Fatalf("DirectDrain: %v", err)
		}
		got, err := tb.fs.ReadFile(p, "/direct/big.bin")
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Error("direct-ingested data mismatch")
		}
	})
	// §4.8: "at full external bandwidth": 8 MB at ~1.15 GB/s ≈ 7 ms — far
	// below the FUSE+OLFS path for the same bytes.
	if ackLatency > 20*time.Millisecond {
		t.Errorf("direct ack = %v, want wire-speed (~7ms)", ackLatency)
	}
	if tb.fs.DirectIngests != 1 || tb.fs.DirectBytes != int64(len(data)) {
		t.Errorf("stats: ingests=%d bytes=%d", tb.fs.DirectIngests, tb.fs.DirectBytes)
	}
}

func TestDirectIngestManyFilesKeepOrderAndAll(t *testing.T) {
	tb := newBed(t, func(c *Config) { c.AutoBurn = false })
	tb.run(t, func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			if err := tb.fs.DirectIngest(p, fmt.Sprintf("/d/f%02d", i), pat(10*1024, byte(i))); err != nil {
				t.Fatalf("ingest %d: %v", i, err)
			}
		}
		if err := tb.fs.DirectDrain(p); err != nil {
			t.Fatalf("drain: %v", err)
		}
		for i := 0; i < 20; i++ {
			got, err := tb.fs.ReadFile(p, fmt.Sprintf("/d/f%02d", i))
			if err != nil || !bytes.Equal(got, pat(10*1024, byte(i))) {
				t.Errorf("file %d wrong after drain: %v", i, err)
			}
		}
	})
}

// burnOneTray writes and burns a small dataset, returning its tray.
func burnOneTray(t *testing.T, tb *testbed, p *sim.Proc, seed byte) rack.TrayID {
	t.Helper()
	for i := 0; i < 2; i++ {
		if err := tb.fs.WriteFile(p, fmt.Sprintf("/scr%d/f%d", seed, i), pat(300*1024, seed+byte(i))); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		if err := tb.fs.Sync(p); err != nil {
			t.Fatalf("Sync: %v", err)
		}
	}
	c, err := tb.fs.FlushAndBurn(p)
	if err != nil {
		t.Fatalf("FlushAndBurn: %v", err)
	}
	if _, err := c.Wait(p); err != nil {
		t.Fatalf("burn: %v", err)
	}
	trays := usedTrayList(tb.fs)
	return trays[len(trays)-1]
}

func TestScrubAndRepairSectorError(t *testing.T) {
	tb := newBed(t, func(c *Config) {
		c.AutoBurn = false
		c.RecycleAfterBurn = true
	})
	tb.run(t, func(p *sim.Proc) {
		tray := burnOneTray(t, tb, p, 1)
		// Inject a latent sector error on a data disc.
		tr, _ := tb.lib.Tray(tray)
		var disc = tr.Discs[0]
		if disc == nil || disc.Blank() {
			// Array may still be in drives; locate it there.
			for _, g := range tb.lib.Groups {
				if g.Source != nil && *g.Source == tray {
					disc = g.Drives[0].Disc()
				}
			}
		}
		disc.CorruptSector(8192)

		rep, err := tb.fs.ScrubAndRepair(p, tray)
		if err != nil {
			t.Fatalf("ScrubAndRepair: %v", err)
		}
		if len(rep.Scrub.BadStrips) == 0 {
			t.Fatal("scrub missed the injected sector error")
		}
		if len(rep.BadDiscs) == 0 || rep.BadDiscs[0] != 0 {
			t.Fatalf("bad discs = %v, want [0]", rep.BadDiscs)
		}
		if len(rep.Recovered) == 0 {
			t.Fatal("no image recovered")
		}
		if rep.ReBurn != nil {
			if _, err := rep.ReBurn.Wait(p); err != nil {
				t.Fatalf("re-burn: %v", err)
			}
		}
		// The file whose image sat on the damaged disc reads back intact.
		got, err := tb.fs.ReadFile(p, "/scr1/f0")
		if err != nil {
			t.Fatalf("read after repair: %v", err)
		}
		if !bytes.Equal(got, pat(300*1024, 1)) {
			t.Error("repaired data mismatch")
		}
	})
	if tb.fs.Repairs == 0 {
		t.Error("Repairs counter is zero")
	}
}

func TestScrubberDaemonRepairsInBackground(t *testing.T) {
	tb := newBed(t, func(c *Config) {
		c.AutoBurn = false
		c.RecycleAfterBurn = true
	})
	tb.run(t, func(p *sim.Proc) {
		tray := burnOneTray(t, tb, p, 5)
		// Put the array back in the roller so the scrubber fetches it.
		for gi, g := range tb.lib.Groups {
			if g.Source != nil && *g.Source == tray {
				tb.fs.unmountGroup(gi)
				if err := tb.lib.UnloadArray(p, gi, nil); err != nil {
					t.Fatalf("unload: %v", err)
				}
			}
		}
		tr, _ := tb.lib.Tray(tray)
		tr.Discs[1].CorruptSector(4096)

		stop := tb.fs.StartScrubber(10 * time.Minute)
		defer stop()
		// Let a few scrub cycles pass.
		p.Sleep(90 * time.Minute)
		if tb.fs.Scrubs == 0 {
			t.Fatal("scrubber never ran")
		}
	})
}

func TestMVSnapshotDaemon(t *testing.T) {
	tb := newBed(t, func(c *Config) { c.AutoBurn = false })
	tb.run(t, func(p *sim.Proc) {
		if err := tb.fs.WriteFile(p, "/snap/f", pat(4096, 9)); err != nil {
			t.Fatal(err)
		}
		stop := tb.fs.StartMVSnapshots(time.Hour)
		defer stop()
		p.Sleep(3*time.Hour + time.Minute)
		if tb.fs.MVSnapshots < 2 {
			t.Fatalf("MVSnapshots = %d after 3h with 1h interval", tb.fs.MVSnapshots)
		}
		// Snapshot files exist in the namespace.
		des, err := tb.fs.MV.ReadDir(p, MVSnapshotDir)
		if err != nil || len(des) == 0 {
			t.Errorf("snapshot dir: %v entries, err %v", len(des), err)
		}
	})
}

func TestBurnFailureRetriesOnFreshTray(t *testing.T) {
	tb := newBed(t, func(c *Config) {
		c.AutoBurn = false
		c.BurnStagger = time.Second
	})
	tb.run(t, func(p *sim.Proc) {
		if err := tb.fs.WriteFile(p, "/bf/a", pat(100*1024, 1)); err != nil {
			t.Fatal(err)
		}
		if err := tb.fs.Sync(p); err != nil {
			t.Fatal(err)
		}
		if err := tb.fs.WriteFile(p, "/bf/b", pat(100*1024, 2)); err != nil {
			t.Fatal(err)
		}
		// Sabotage the first tray the burn will pick: pre-burn garbage onto
		// one blank disc so the write-all-once burn fails (WORM violation).
		tray, ok := tb.fs.Cat.FindEmptyTray(tb.lib)
		if !ok {
			t.Fatal("no empty tray")
		}
		tr, _ := tb.lib.Tray(tray)
		sab := tr.Discs[0]
		preburnGarbage(t, tb, p, sab)

		c, err := tb.fs.FlushAndBurn(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Wait(p); err != nil {
			t.Fatalf("burn should have retried and succeeded: %v", err)
		}
		// The sabotaged tray is marked Failed; a different tray is Used.
		if tb.fs.Cat.DAState(tray) != image.DAFailed {
			t.Errorf("sabotaged tray state = %v, want Failed", tb.fs.Cat.DAState(tray))
		}
		used := 0
		for _, st := range tb.fs.Cat.DA {
			if st == image.DAUsed {
				used++
			}
		}
		if used == 0 {
			t.Error("no tray Used after retry")
		}
		// Data remains readable.
		if _, err := tb.fs.ReadFile(p, "/bf/a"); err != nil {
			t.Errorf("read after retry: %v", err)
		}
	})
}

// preburnGarbage burns a tiny track onto a disc outside OLFS's control, so
// the disc is no longer blank and OLFS's write-all-once burn rejects it.
func preburnGarbage(t *testing.T, tb *testbed, p *sim.Proc, d *optical.Disc) {
	t.Helper()
	dr := optical.NewDrive(tb.env, "saboteur", nil)
	if err := dr.ArmLoad(d); err != nil {
		t.Fatalf("sabotage load: %v", err)
	}
	if _, err := dr.Burn(p, nil, optical.BurnOptions{LogicalBytes: 1 << 20}); err != nil {
		t.Fatalf("sabotage burn: %v", err)
	}
	if _, err := dr.ArmEject(); err != nil {
		t.Fatalf("sabotage eject: %v", err)
	}
}
