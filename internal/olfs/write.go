package olfs

import (
	"fmt"

	"ros/internal/bucket"
	"ros/internal/image"
	"ros/internal/mv"
	"ros/internal/sim"
	"ros/internal/udf"
	"ros/internal/writepath"
)

// fileWriter is an open-for-write OLFS file: data streams into the current
// bucket (preliminary bucket writing, §4.3), spilling into further buckets
// when one fills (§4.5), with the version entry committed on Close (§4.6).
type fileWriter struct {
	fs   *FS
	path string

	w        *udf.Writer     // writer into the current bucket, nil before first byte
	curID    image.ID        // bucket receiving the current subfile
	parts    []image.ID      // completed subfile locations
	partLens []int64         // completed subfile lengths
	partName string          // unique path used inside images (versioned for updates)
	version  int             // version number this writer will commit
	class    writepath.Class // admission class charged for this writer's bytes
	forepart []byte          // first bytes retained for MV (§4.8)
	size     int64
	closed   bool
}

// internalName is the unique file path used inside disc images: version 1
// keeps the global path verbatim (§4.4); updates append a version suffix so
// every retained version remains independently readable and recoverable from
// discs (§4.6: "OLFS can obtain any of its foregoing versions").
func internalName(path string, version int) string {
	if version <= 1 {
		return path
	}
	return fmt.Sprintf("%s.__v%d", path, version)
}

// Create opens path for writing. Fig 7's write prologue: stat (lookup index
// file), mknod (create index), stat (re-validate).
func (fs *FS) CreateFile(p *sim.Proc, path string) (*fileWriter, error) {
	return fs.CreateFileClass(p, path, writepath.Interactive)
}

// CreateFileClass opens path for writing under an explicit admission class.
// Archival writers (mover traffic, re-replication) draw from the archival
// token reservation instead of competing with interactive ingest.
func (fs *FS) CreateFileClass(p *sim.Proc, path string, cl writepath.Class) (*fileWriter, error) {
	if fs.stopped {
		return nil, ErrStopped
	}
	var exists bool
	_ = fs.op(p, "stat", func() error {
		_, err := fs.MV.Stat(p, path)
		exists = err == nil
		return nil
	})
	if !exists {
		if err := fs.op(p, "mknod", func() error {
			_, err := fs.MV.Mknod(p, path, false)
			return err
		}); err != nil {
			return nil, err
		}
	}
	var ix *mv.Index
	if err := fs.op(p, "stat", func() error {
		var err error
		ix, err = fs.MV.Stat(p, path)
		return err
	}); err != nil {
		return nil, err
	}
	if ix.Dir {
		return nil, fmt.Errorf("olfs: %s is a directory", path)
	}
	version := 1
	if cur := ix.Current(); cur != nil {
		version = cur.Version + 1
	}
	return &fileWriter{
		fs:       fs,
		path:     path,
		version:  version,
		class:    cl,
		partName: internalName(path, version),
	}, nil
}

// Write appends data. Each call is one data request (§5.3 overheads); data
// lands in the open bucket, spilling across buckets when full.
func (fw *fileWriter) Write(p *sim.Proc, data []byte) (int, error) {
	if fw.closed {
		return 0, fmt.Errorf("olfs: write to closed file %s", fw.path)
	}
	fs := fw.fs
	if err := fs.wp.Admit(p, fw.class, int64(len(data))); err != nil {
		return 0, err
	}
	var landed int64
	if err := fs.dataOp(p, "write", func() error {
		p.Sleep(fs.cfg.WriteReqOverhead)
		if fs.cfg.DirectIO {
			fs.chargeMVOp(p) // per-write journal sync (§5.2 tracing setup)
		}
		var werr error
		landed, werr = fw.writeLocked(p, data)
		return werr
	}); err != nil {
		// Bytes that reached a bucket stay charged there (they occupy the
		// buffer and drain through the burn pipeline); return the rest.
		if rem := int64(len(data)) - landed; rem > 0 {
			fs.wp.Release(fw.class, rem)
		}
		return 0, err
	}
	if fs.cfg.Forepart && len(fw.forepart) < mv.MaxForepart {
		room := mv.MaxForepart - len(fw.forepart)
		if room > len(data) {
			room = len(data)
		}
		fw.forepart = append(fw.forepart, data[:room]...)
	}
	fw.size += int64(len(data))
	fs.m.bytesWritten.Add(int64(len(data)))
	return len(data), nil
}

// writeLocked pushes data into buckets under the bucket mutex. It returns
// the number of bytes that landed in buckets (and were attributed to them
// for admission accounting) even when it fails partway.
func (fw *fileWriter) writeLocked(p *sim.Proc, data []byte) (int64, error) {
	fs := fw.fs
	fs.curMu.Acquire(p)
	defer fs.curMu.Release()
	var landed int64
	for len(data) > 0 {
		if fw.w == nil {
			b, err := fs.ensureBucket(p)
			if err != nil {
				return landed, err
			}
			w, err := b.Vol.CreateWriter(p, fw.partName)
			if err != nil {
				if err == udf.ErrNoSpace {
					// Bucket can't even hold the entry/dirs: seal and retry.
					if serr := fs.sealCurrent(p); serr != nil {
						return landed, serr
					}
					continue
				}
				return landed, err
			}
			fw.w = w
			fw.curID = b.ID
		}
		n, err := fw.w.Write(p, data)
		fs.wp.ChargeBucket(fw.curID, fw.class, int64(n))
		landed += int64(n)
		data = data[n:]
		if err == nil {
			break
		}
		if err != udf.ErrNoSpace {
			return landed, err
		}
		// Current bucket full: finish this subfile, seal the bucket, and
		// continue in a new one with a link back to the previous subfile
		// (§4.5).
		if cerr := fw.finishSubfile(p); cerr != nil {
			return landed, cerr
		}
		if serr := fs.sealCurrent(p); serr != nil {
			return landed, serr
		}
		b, err := fs.ensureBucket(p)
		if err != nil {
			return landed, err
		}
		link := fmt.Sprintf("%s.__rosprev%d", fw.partName, len(fw.parts))
		target := fmt.Sprintf("image:%s%s", fw.parts[len(fw.parts)-1], fw.partName)
		if err := b.Vol.WriteLink(p, link, target); err != nil {
			return landed, err
		}
		fs.m.splitFiles.Add(1)
	}
	return landed, nil
}

// finishSubfile closes the current UDF writer and records the part.
func (fw *fileWriter) finishSubfile(p *sim.Proc) error {
	if fw.w == nil {
		return nil
	}
	if err := fw.w.Close(p); err != nil {
		return err
	}
	fw.parts = append(fw.parts, fw.curID)
	fw.partLens = append(fw.partLens, fw.w.Written())
	fw.w = nil
	return nil
}

// Close commits the file: the final subfile is closed, the version entry is
// appended to the index (the Fig 7 "close" step), and the forepart stored
// if enabled.
func (fw *fileWriter) Close(p *sim.Proc) error {
	if fw.closed {
		return nil
	}
	fw.closed = true
	fs := fw.fs
	return fs.op(p, "close", func() error {
		fs.curMu.Acquire(p)
		err := fw.finishSubfile(p)
		fs.curMu.Release()
		if err != nil {
			return err
		}
		if len(fw.parts) == 0 {
			// Empty file: record a zero-length version with no parts.
			fw.parts = nil
		}
		ve := mv.VersionEntry{
			Version:  fw.version,
			Size:     fw.size,
			Parts:    append([]image.ID(nil), fw.parts...),
			PartLens: append([]int64(nil), fw.partLens...),
		}
		if err := fs.MV.AppendVersion(p, fw.path, ve); err != nil {
			return err
		}
		if fs.cfg.Forepart && len(fw.forepart) > 0 {
			if err := fs.MV.SetForepart(p, fw.path, fw.forepart); err != nil {
				return err
			}
		}
		fs.m.filesWritten.Add(1)
		return nil
	})
}

// WriteFile is the whole-file convenience wrapper (interactive class).
func (fs *FS) WriteFile(p *sim.Proc, path string, data []byte) error {
	return fs.WriteFileClass(p, path, data, writepath.Interactive)
}

// WriteFileClass writes a whole file under an explicit admission class.
func (fs *FS) WriteFileClass(p *sim.Proc, path string, data []byte, cl writepath.Class) (err error) {
	op := fs.tracer.StartOp(p, "olfs.write", cl.String())
	op.Annotate("path", path)
	op.Annotate("bytes", fmt.Sprintf("%d", len(data)))
	defer func() { op.Finish(p, err) }()
	fw, err := fs.CreateFileClass(p, path, cl)
	if err != nil {
		return err
	}
	if len(data) > 0 {
		if _, err := fw.Write(p, data); err != nil {
			fw.closed = true
			return err
		}
	}
	return fw.Close(p)
}

// openBucketFor reports which bucket currently holds an unsealed writer —
// exposed for tests.
func (fs *FS) CurrentBucket() *bucket.Bucket { return fs.cur }
