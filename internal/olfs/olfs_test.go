package olfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"ros/internal/blockdev"
	"ros/internal/bucket"
	"ros/internal/image"
	"ros/internal/mv"
	"ros/internal/optical"
	"ros/internal/pagecache"
	"ros/internal/rack"
	"ros/internal/raid"
	"ros/internal/sim"
)

// testbed assembles a small but complete ROS: 1 roller, 2 drive groups,
// 25 GB discs, 1 MB buckets (BucketBytes override), 2+1 redundancy.
type testbed struct {
	env *sim.Env
	lib *rack.Library
	fs  *FS
	mvS *blockdev.Disk
	buf *pagecache.Volume
}

func newBed(t *testing.T, mod func(*Config)) *testbed {
	t.Helper()
	env := sim.NewEnv()
	lib, err := rack.New(env, rack.Config{
		Rollers: 1, DriveGroups: 2, Media: optical.Media25, PopulateAll: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// MV on a RAID-1 SSD pair.
	ssds := []blockdev.Device{
		blockdev.New(env, 1<<30, blockdev.SSDProfile()),
		blockdev.New(env, 1<<30, blockdev.SSDProfile()),
	}
	mvArr, err := raid.New(env, raid.RAID1, ssds, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Buffer: cached RAID-5 of 7 HDDs.
	hdds := make([]blockdev.Device, 7)
	for i := range hdds {
		hdds[i] = blockdev.New(env, 16<<20, blockdev.HDDProfile())
	}
	bufArr, err := raid.New(env, raid.RAID5, hdds, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	buf := pagecache.New(env, bufArr, pagecache.Ext4Rates())
	cfg := Config{
		DataDiscs:   2,
		ParityDiscs: 1,
		AutoBurn:    true,
		BucketBytes: 1 << 20,
		BurnStagger: time.Second, // keep multi-disc tests quick in virtual time
	}
	if mod != nil {
		mod(&cfg)
	}
	fs, err := New(env, cfg, lib, mvArr, buf)
	if err != nil {
		t.Fatal(err)
	}
	mvDisk, _ := ssds[0].(*blockdev.Disk)
	return &testbed{env: env, lib: lib, fs: fs, mvS: mvDisk, buf: buf}
}

func (tb *testbed) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	tb.env.Go("test", fn)
	tb.env.Run()
	if tb.env.Deadlocked() {
		t.Fatal("simulation deadlocked")
	}
}

func pat(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*3 + seed
	}
	return b
}

func TestWriteReadInBucket(t *testing.T) {
	tb := newBed(t, nil)
	data := pat(5000, 1)
	tb.run(t, func(p *sim.Proc) {
		if err := tb.fs.WriteFile(p, "/exp/a.dat", data); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		got, err := tb.fs.ReadFile(p, "/exp/a.dat")
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Error("round trip mismatch")
		}
	})
	if tb.fs.FilesWritten != 1 || tb.fs.FilesRead != 1 {
		t.Errorf("counters: written=%d read=%d", tb.fs.FilesWritten, tb.fs.FilesRead)
	}
}

func TestFig7WriteTraceSequence(t *testing.T) {
	tb := newBed(t, func(c *Config) { c.DirectIO = true; c.AutoBurn = false })
	var elapsed time.Duration
	tb.run(t, func(p *sim.Proc) {
		tb.fs.StartTrace()
		start := p.Now()
		if err := tb.fs.WriteFile(p, "/t/file", pat(1024, 2)); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		elapsed = p.Now() - start
	})
	trace := tb.fs.StopTrace()
	var names []string
	for _, op := range trace {
		names = append(names, op.Name)
	}
	want := []string{"stat", "mknod", "stat", "write", "close"}
	if len(names) != len(want) {
		t.Fatalf("trace = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("trace = %v, want %v (Fig 7)", names, want)
		}
	}
	// Fig 7: ~16 ms for a 1 KB direct-I/O write.
	if elapsed < 13*time.Millisecond || elapsed > 19*time.Millisecond {
		t.Errorf("1KB write latency = %v, want ~16ms (Fig 7)", elapsed)
	}
}

func TestFig7ReadTraceSequence(t *testing.T) {
	tb := newBed(t, func(c *Config) { c.DirectIO = true; c.AutoBurn = false })
	var elapsed time.Duration
	tb.run(t, func(p *sim.Proc) {
		if err := tb.fs.WriteFile(p, "/t/file", pat(1024, 3)); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		tb.fs.StartTrace()
		start := p.Now()
		if _, err := tb.fs.ReadFile(p, "/t/file"); err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		elapsed = p.Now() - start
	})
	trace := tb.fs.StopTrace()
	// stat, read (1KB fits one request), final zero-read, close — the zero
	// read is the EOF probe; the paper's trace shows stat, read, close.
	if len(trace) < 3 {
		t.Fatalf("trace too short: %+v", trace)
	}
	if trace[0].Name != "stat" || trace[1].Name != "read" || trace[len(trace)-1].Name != "close" {
		t.Errorf("trace order: %+v", trace)
	}
	// Fig 7: ~9 ms for a 1 KB direct-I/O read.
	if elapsed < 7*time.Millisecond || elapsed > 13*time.Millisecond {
		t.Errorf("1KB read latency = %v, want ~9ms (Fig 7)", elapsed)
	}
}

func TestVersioningOnUpdate(t *testing.T) {
	tb := newBed(t, func(c *Config) { c.AutoBurn = false })
	tb.run(t, func(p *sim.Proc) {
		for v := 1; v <= 3; v++ {
			if err := tb.fs.WriteFile(p, "/f", pat(100*v, byte(v))); err != nil {
				t.Fatalf("write v%d: %v", v, err)
			}
		}
		got, err := tb.fs.ReadFile(p, "/f")
		if err != nil || !bytes.Equal(got, pat(300, 3)) {
			t.Errorf("current version wrong: len=%d err=%v", len(got), err)
		}
		// Historical versions retrievable (§4.6 data provenance).
		fr, err := tb.fs.OpenFileVersion(p, "/f", 1)
		if err != nil {
			t.Fatalf("OpenFileVersion: %v", err)
		}
		buf := make([]byte, 200)
		n, err := fr.ReadAt(p, buf, 0)
		if err != nil || n != 100 || !bytes.Equal(buf[:n], pat(100, 1)) {
			t.Errorf("version 1 read: n=%d err=%v", n, err)
		}
	})
}

func TestFileSplitsAcrossBuckets(t *testing.T) {
	tb := newBed(t, func(c *Config) { c.AutoBurn = false })
	// 2.5 MB file into 1 MB buckets: must split into >= 3 subfiles.
	data := pat(2500*1024, 7)
	tb.run(t, func(p *sim.Proc) {
		if err := tb.fs.WriteFile(p, "/big/movie.bin", data); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		ix, err := tb.fs.MV.Stat(p, "/big/movie.bin")
		if err != nil {
			t.Fatalf("Stat: %v", err)
		}
		cur := ix.Current()
		if len(cur.Parts) < 3 {
			t.Errorf("parts = %d, want >= 3 for a 2.5MB file in 1MB buckets", len(cur.Parts))
		}
		var sum int64
		for _, l := range cur.PartLens {
			sum += l
		}
		if sum != int64(len(data)) || cur.Size != int64(len(data)) {
			t.Errorf("part lens sum=%d size=%d want %d", sum, cur.Size, len(data))
		}
		got, err := tb.fs.ReadFile(p, "/big/movie.bin")
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Error("split file reassembly mismatch")
		}
	})
	if tb.fs.SplitFiles == 0 {
		t.Error("SplitFiles counter is zero")
	}
}

func TestBurnPipelineEndToEnd(t *testing.T) {
	tb := newBed(t, func(c *Config) { c.AutoBurn = false })
	files := map[string][]byte{}
	tb.run(t, func(p *sim.Proc) {
		// Fill two buckets' worth of data.
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("/arch/f%02d", i)
			files[name] = pat(400*1024, byte(i+1))
			if err := tb.fs.WriteFile(p, name, files[name]); err != nil {
				t.Fatalf("WriteFile: %v", err)
			}
		}
		c, err := tb.fs.FlushAndBurn(p)
		if err != nil {
			t.Fatalf("FlushAndBurn: %v", err)
		}
		if _, err := c.Wait(p); err != nil {
			t.Fatalf("burn failed: %v", err)
		}
	})
	// Catalog must show a Used tray and placed images.
	used := 0
	for _, st := range tb.fs.Cat.DA {
		if st == image.DAUsed {
			used++
		}
	}
	if used != 1 {
		t.Errorf("used trays = %d, want 1", used)
	}
	if len(tb.fs.Cat.DIL) < 3 { // 2+ data images + 1 parity
		t.Errorf("DIL entries = %d, want >= 3", len(tb.fs.Cat.DIL))
	}
	// Discs physically burned.
	tray, _ := tb.fs.Cat.FindEmptyTray(tb.lib)
	_ = tray
	burnt := 0
	for l := 0; l < rack.LayersPerRoller; l++ {
		for s := 0; s < rack.SlotsPerLayer; s++ {
			for _, d := range tb.lib.Rollers[0].Tray(l, s).Discs {
				if !d.Blank() {
					burnt++
				}
			}
		}
	}
	if burnt < 3 {
		t.Errorf("burned discs = %d, want >= 3", burnt)
	}
}

func TestReadFromDiscAfterEviction(t *testing.T) {
	tb := newBed(t, func(c *Config) {
		c.AutoBurn = false
		c.RecycleAfterBurn = true // force reads to go to disc
	})
	data := pat(300*1024, 9)
	var fetchLatency time.Duration
	tb.run(t, func(p *sim.Proc) {
		if err := tb.fs.WriteFile(p, "/cold/x.bin", data); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		c, err := tb.fs.FlushAndBurn(p)
		if err != nil {
			t.Fatalf("FlushAndBurn: %v", err)
		}
		if _, err := c.Wait(p); err != nil {
			t.Fatalf("burn: %v", err)
		}
		start := p.Now()
		got, err := tb.fs.ReadFile(p, "/cold/x.bin")
		if err != nil {
			t.Fatalf("ReadFile from disc: %v", err)
		}
		fetchLatency = p.Now() - start
		if !bytes.Equal(got, data) {
			t.Error("disc read mismatch")
		}
	})
	if tb.fs.CacheMisses == 0 || tb.fs.FetchTasks == 0 {
		t.Errorf("misses=%d fetches=%d", tb.fs.CacheMisses, tb.fs.FetchTasks)
	}
	// Mechanical fetch dominates: ~70 s load + spin-up + mount + read.
	if fetchLatency < 69*time.Second || fetchLatency > 110*time.Second {
		t.Errorf("fetch read latency = %v, want ~70-90s (Table 1 row 4)", fetchLatency)
	}
}

func TestSecondReadHitsLoadedDrive(t *testing.T) {
	tb := newBed(t, func(c *Config) {
		c.AutoBurn = false
		c.RecycleAfterBurn = true
	})
	tb.run(t, func(p *sim.Proc) {
		if err := tb.fs.WriteFile(p, "/c/a", pat(100*1024, 1)); err != nil {
			t.Fatal(err)
		}
		if err := tb.fs.WriteFile(p, "/c/b", pat(100*1024, 2)); err != nil {
			t.Fatal(err)
		}
		c, _ := tb.fs.FlushAndBurn(p)
		if _, err := c.Wait(p); err != nil {
			t.Fatalf("burn: %v", err)
		}
		if _, err := tb.fs.ReadFile(p, "/c/a"); err != nil {
			t.Fatalf("first read: %v", err)
		}
		start := p.Now()
		if _, err := tb.fs.ReadFile(p, "/c/b"); err != nil {
			t.Fatalf("second read: %v", err)
		}
		d := p.Now() - start
		// Array already in drives: sub-second access (Table 1 row 3 regime).
		if d > 5*time.Second {
			t.Errorf("warm disc read took %v, want < 5s", d)
		}
	})
}

func TestAutoBurnTriggers(t *testing.T) {
	tb := newBed(t, nil) // AutoBurn on
	tb.run(t, func(p *sim.Proc) {
		// Write enough to seal >= 2 buckets (DataDiscs=2): ~2.5 MB.
		if err := tb.fs.WriteFile(p, "/auto/big", pat(2500*1024, 5)); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		// Let the burn pipeline drain.
		p.Sleep(4 * time.Hour)
	})
	if tb.fs.BurnTasks == 0 {
		t.Fatal("auto burn never triggered")
	}
	used := 0
	for _, st := range tb.fs.Cat.DA {
		if st == image.DAUsed {
			used++
		}
	}
	if used == 0 {
		t.Error("no tray marked Used after auto burn")
	}
}

func TestReadCacheHitAfterBurn(t *testing.T) {
	tb := newBed(t, func(c *Config) { c.AutoBurn = false }) // keep cached copies
	tb.run(t, func(p *sim.Proc) {
		if err := tb.fs.WriteFile(p, "/rc/f", pat(200*1024, 4)); err != nil {
			t.Fatal(err)
		}
		c, _ := tb.fs.FlushAndBurn(p)
		if _, err := c.Wait(p); err != nil {
			t.Fatalf("burn: %v", err)
		}
		start := p.Now()
		if _, err := tb.fs.ReadFile(p, "/rc/f"); err != nil {
			t.Fatalf("read: %v", err)
		}
		if d := p.Now() - start; d > time.Second {
			t.Errorf("cached read took %v — should hit the buffer copy", d)
		}
	})
	if tb.fs.CacheHits == 0 {
		t.Error("no cache hit recorded")
	}
}

func TestScrubCleanTray(t *testing.T) {
	tb := newBed(t, func(c *Config) { c.AutoBurn = false })
	tb.run(t, func(p *sim.Proc) {
		if err := tb.fs.WriteFile(p, "/s/f", pat(500*1024, 6)); err != nil {
			t.Fatal(err)
		}
		c, _ := tb.fs.FlushAndBurn(p)
		if _, err := c.Wait(p); err != nil {
			t.Fatalf("burn: %v", err)
		}
		var tray rack.TrayID
		for k, st := range tb.fs.Cat.DA {
			if st == image.DAUsed {
				fmt.Sscanf(k, "r%d/L%d/S%d", &tray.Roller, &tray.Layer, &tray.Slot)
			}
		}
		rep, err := tb.fs.ScrubTray(p, tray)
		if err != nil {
			t.Fatalf("ScrubTray: %v", err)
		}
		if len(rep.BadStrips) != 0 {
			t.Errorf("clean tray has %d bad strips", len(rep.BadStrips))
		}
	})
}

func TestRecoverImageFromParity(t *testing.T) {
	tb := newBed(t, func(c *Config) {
		c.AutoBurn = false
		c.RecycleAfterBurn = true
	})
	data := pat(600*1024, 8)
	tb.run(t, func(p *sim.Proc) {
		if err := tb.fs.WriteFile(p, "/r/precious", data); err != nil {
			t.Fatal(err)
		}
		c, _ := tb.fs.FlushAndBurn(p)
		if _, err := c.Wait(p); err != nil {
			t.Fatalf("burn: %v", err)
		}
		// Find the image holding the file and destroy its disc.
		ix, _ := tb.fs.MV.Stat(p, "/r/precious")
		imgID := ix.Current().Parts[0]
		addr, ok := tb.fs.Cat.Locate(imgID)
		if !ok {
			t.Fatal("image not in DIL")
		}
		tray, _ := tb.lib.Tray(addr.Tray)
		tray.Discs[addr.Pos].Fail()

		nb, err := tb.fs.RecoverImage(p, imgID)
		if err != nil {
			t.Fatalf("RecoverImage: %v", err)
		}
		if nb.State() != bucket.StateFilled {
			t.Errorf("recovered bucket state = %v", nb.State())
		}
		// The file now reads from the recovered buffer image.
		got, err := tb.fs.ReadFile(p, "/r/precious")
		if err != nil {
			t.Fatalf("read after recovery: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Error("recovered data mismatch")
		}
	})
}

func TestVFSInterface(t *testing.T) {
	tb := newBed(t, func(c *Config) { c.AutoBurn = false })
	tb.run(t, func(p *sim.Proc) {
		fs := tb.fs
		if err := fs.Mkdir(p, "/docs"); err != nil {
			t.Fatalf("Mkdir: %v", err)
		}
		f, err := fs.Create(p, "/docs/readme.txt")
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		if _, err := f.Write(p, []byte("hello ROS")); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if err := f.Close(p); err != nil {
			t.Fatalf("Close: %v", err)
		}
		fi, err := fs.Stat(p, "/docs/readme.txt")
		if err != nil || fi.Size != 9 || fi.IsDir {
			t.Errorf("Stat = %+v, %v", fi, err)
		}
		des, err := fs.ReadDir(p, "/docs")
		if err != nil || len(des) != 1 || des[0].Name != "readme.txt" {
			t.Errorf("ReadDir = %+v, %v", des, err)
		}
		r, err := fs.Open(p, "/docs/readme.txt")
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		buf := make([]byte, 100)
		n, _ := r.Read(p, buf)
		if string(buf[:n]) != "hello ROS" {
			t.Errorf("Read = %q", buf[:n])
		}
		_ = r.Close(p)
		if err := fs.Unlink(p, "/docs/readme.txt"); err != nil {
			t.Fatalf("Unlink: %v", err)
		}
		if _, err := fs.Stat(p, "/docs/readme.txt"); err == nil {
			t.Error("stat after unlink succeeded")
		}
	})
}

func TestForepartFirstByte(t *testing.T) {
	tb := newBed(t, func(c *Config) {
		c.AutoBurn = false
		c.RecycleAfterBurn = true
		c.Forepart = true
	})
	tb.run(t, func(p *sim.Proc) {
		if err := tb.fs.WriteFile(p, "/fp/f", pat(100*1024, 3)); err != nil {
			t.Fatal(err)
		}
		c, _ := tb.fs.FlushAndBurn(p)
		if _, err := c.Wait(p); err != nil {
			t.Fatalf("burn: %v", err)
		}
		start := p.Now()
		b, err := tb.fs.ReadFirstByte(p, "/fp/f")
		if err != nil {
			t.Fatalf("ReadFirstByte: %v", err)
		}
		d := p.Now() - start
		if b != pat(1, 3)[0] {
			t.Errorf("first byte = %d", b)
		}
		// §4.8: "the first word of the file can quickly respond within 2 ms"
		// (plus our stat overhead).
		if d > 10*time.Millisecond {
			t.Errorf("first byte latency = %v, want ms-scale (forepart)", d)
		}
	})
	if tb.fs.ForepartHits != 1 {
		t.Errorf("ForepartHits = %d", tb.fs.ForepartHits)
	}
}

func TestCrashReopen(t *testing.T) {
	env := sim.NewEnv()
	lib, _ := rack.New(env, rack.Config{Rollers: 1, DriveGroups: 2, Media: optical.Media25, PopulateAll: true})
	mvStore := blockdev.New(env, 1<<30, blockdev.SSDProfile())
	bufStore := blockdev.New(env, 64<<20, blockdev.SSDProfile())
	cfg := Config{DataDiscs: 2, ParityDiscs: 1, AutoBurn: false, BucketBytes: 1 << 20, BurnStagger: time.Second}
	fs1, err := New(env, cfg, lib, mvStore, bufStore)
	if err != nil {
		t.Fatal(err)
	}
	data := pat(64*1024, 2)
	var fs2 *FS
	env.Go("test", func(p *sim.Proc) {
		if err := fs1.WriteFile(p, "/persist/f", data); err != nil {
			t.Errorf("WriteFile: %v", err)
			return
		}
		if err := fs1.Checkpoint(p); err != nil {
			t.Errorf("Checkpoint: %v", err)
			return
		}
		fs1.Stop()
		// "Crash": reopen from the same backends.
		fs2, err = Reopen(env, p, cfg, lib, mvStore, bufStore)
		if err != nil {
			t.Errorf("Reopen: %v", err)
			return
		}
		got, err := fs2.ReadFile(p, "/persist/f")
		if err != nil {
			t.Errorf("read after reopen: %v", err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("data lost across crash")
		}
		// The unsealed bucket was re-adopted: more writes continue in it.
		if err := fs2.WriteFile(p, "/persist/g", pat(1000, 3)); err != nil {
			t.Errorf("write after reopen: %v", err)
		}
	})
	env.Run()
	if env.Deadlocked() {
		t.Fatal("deadlocked")
	}
}

func TestNamespaceRecoveryFromDiscs(t *testing.T) {
	tb := newBed(t, func(c *Config) {
		c.AutoBurn = false
		c.RecycleAfterBurn = true
	})
	files := map[string][]byte{
		"/docs/a.txt":     pat(50*1024, 1),
		"/docs/b.txt":     pat(80*1024, 2),
		"/media/clip.bin": pat(300*1024, 3),
	}
	tb.run(t, func(p *sim.Proc) {
		for name, data := range files {
			if err := tb.fs.WriteFile(p, name, data); err != nil {
				t.Fatal(err)
			}
		}
		c, _ := tb.fs.FlushAndBurn(p)
		if _, err := c.Wait(p); err != nil {
			t.Fatalf("burn: %v", err)
		}
		// Record which trays were used, then simulate total MV loss.
		var trays []rack.TrayID
		for k, st := range tb.fs.Cat.DA {
			if st == image.DAUsed {
				var id rack.TrayID
				fmt.Sscanf(k, "r%d/L%d/S%d", &id.Roller, &id.Layer, &id.Slot)
				trays = append(trays, id)
			}
		}
		tb.fs.MV = mv.New(tb.env, tb.mvS, tb.fs.cfg.MVOpCost)
		tb.fs.Cat = image.NewCatalog()
		if err := tb.fs.RecoverNamespace(p, trays); err != nil {
			t.Fatalf("RecoverNamespace: %v", err)
		}
		for name, data := range files {
			got, err := tb.fs.ReadFile(p, name)
			if err != nil {
				t.Errorf("read %s after recovery: %v", name, err)
				continue
			}
			if !bytes.Equal(got, data) {
				t.Errorf("%s recovered with wrong content", name)
			}
		}
	})
}

func TestStopRejectsNewWork(t *testing.T) {
	tb := newBed(t, nil)
	tb.run(t, func(p *sim.Proc) {
		tb.fs.Stop()
		if err := tb.fs.WriteFile(p, "/x", []byte("y")); !errors.Is(err, ErrStopped) {
			t.Errorf("write after stop: %v", err)
		}
		if _, err := tb.fs.OpenFile(p, "/x"); !errors.Is(err, ErrStopped) {
			t.Errorf("open after stop: %v", err)
		}
	})
}
