package olfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ros/internal/mv"
	"ros/internal/sim"
)

// oracleFile is the reference model of one file: its full version history.
type oracleFile struct {
	versions [][]byte // index 0 = version 1
}

// TestOracleRandomWorkload drives OLFS with a long randomized operation
// sequence — writes, updates, reads, syncs, burns, historical reads, unlinks
// and direct ingests — and checks every observable result against a simple
// in-memory reference model. The burn pipeline, bucket splitting, version
// rings and the read tier ladder are all in play.
func TestOracleRandomWorkload(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runOracle(t, seed, 250)
		})
	}
}

func runOracle(t *testing.T, seed int64, steps int) {
	tb := newBed(t, func(c *Config) {
		c.AutoBurn = true
		c.BurnStagger = time.Second
	})
	rng := rand.New(rand.NewSource(seed))
	model := map[string]*oracleFile{}
	paths := func() []string {
		out := make([]string, 0, len(model))
		for p := range model {
			out = append(out, p)
		}
		// Deterministic order for reproducibility.
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j] < out[j-1]; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		return out
	}
	newPath := func() string {
		return fmt.Sprintf("/oracle/d%d/f%03d", rng.Intn(5), rng.Intn(1000))
	}
	payload := func() []byte {
		n := rng.Intn(200*1024) + 1
		b := make([]byte, n)
		seedB := byte(rng.Intn(256))
		for i := range b {
			b[i] = byte(i)*13 + seedB
		}
		return b
	}

	tb.run(t, func(p *sim.Proc) {
		for step := 0; step < steps; step++ {
			switch op := rng.Intn(100); {
			case op < 35: // write or update
				path := newPath()
				if len(model) > 0 && rng.Intn(2) == 0 {
					ps := paths()
					path = ps[rng.Intn(len(ps))]
				}
				data := payload()
				if err := tb.fs.WriteFile(p, path, data); err != nil {
					t.Fatalf("step %d write %s: %v", step, path, err)
				}
				of := model[path]
				if of == nil {
					of = &oracleFile{}
					model[path] = of
				}
				of.versions = append(of.versions, data)

			case op < 60: // read current and verify
				if len(model) == 0 {
					continue
				}
				ps := paths()
				path := ps[rng.Intn(len(ps))]
				got, err := tb.fs.ReadFile(p, path)
				if err != nil {
					t.Fatalf("step %d read %s: %v", step, path, err)
				}
				want := model[path].versions[len(model[path].versions)-1]
				if !bytes.Equal(got, want) {
					t.Fatalf("step %d read %s: got %d bytes, want %d (content mismatch)",
						step, path, len(got), len(want))
				}

			case op < 70: // read a historical version
				if len(model) == 0 {
					continue
				}
				ps := paths()
				path := ps[rng.Intn(len(ps))]
				of := model[path]
				nv := len(of.versions)
				if nv < 2 {
					continue
				}
				// Pick a retained version (ring keeps the last 15).
				lo := 1
				if nv > mv.MaxVersionEntries {
					lo = nv - mv.MaxVersionEntries + 1
				}
				v := lo + rng.Intn(nv-lo+1)
				fr, err := tb.fs.OpenFileVersion(p, path, v)
				if err != nil {
					t.Fatalf("step %d open %s v%d (of %d): %v", step, path, v, nv, err)
				}
				want := of.versions[v-1]
				got := make([]byte, len(want)+10)
				n, err := fr.ReadAt(p, got, 0)
				if err != nil {
					t.Fatalf("step %d readat %s v%d: %v", step, path, v, err)
				}
				if n != len(want) || !bytes.Equal(got[:n], want) {
					t.Fatalf("step %d version %s v%d mismatch (%d vs %d bytes)",
						step, path, v, n, len(want))
				}

			case op < 78: // sync (seal bucket)
				if err := tb.fs.Sync(p); err != nil {
					t.Fatalf("step %d sync: %v", step, err)
				}

			case op < 84: // force a burn and wait for it
				c, err := tb.fs.FlushAndBurn(p)
				if err != nil {
					t.Fatalf("step %d flush: %v", step, err)
				}
				if _, err := c.Wait(p); err != nil {
					t.Fatalf("step %d burn: %v", step, err)
				}

			case op < 90: // direct ingest
				path := newPath()
				for model[path] != nil {
					path = newPath()
				}
				data := payload()
				if err := tb.fs.DirectIngest(p, path, data); err != nil {
					t.Fatalf("step %d ingest: %v", step, err)
				}
				if err := tb.fs.DirectDrain(p); err != nil {
					t.Fatalf("step %d drain: %v", step, err)
				}
				model[path] = &oracleFile{versions: [][]byte{data}}

			case op < 95: // unlink
				if len(model) == 0 {
					continue
				}
				ps := paths()
				path := ps[rng.Intn(len(ps))]
				if err := tb.fs.Unlink(p, path); err != nil {
					t.Fatalf("step %d unlink %s: %v", step, path, err)
				}
				delete(model, path)
				if _, err := tb.fs.OpenFile(p, path); err == nil {
					t.Fatalf("step %d: %s readable after unlink", step, path)
				}

			default: // stat + size check
				if len(model) == 0 {
					continue
				}
				ps := paths()
				path := ps[rng.Intn(len(ps))]
				fi, err := tb.fs.Stat(p, path)
				if err != nil {
					t.Fatalf("step %d stat %s: %v", step, path, err)
				}
				of := model[path]
				want := of.versions[len(of.versions)-1]
				if fi.Size != int64(len(want)) {
					t.Fatalf("step %d stat %s: size %d, want %d", step, path, fi.Size, len(want))
				}
				if fi.Version != len(of.versions) {
					t.Fatalf("step %d stat %s: version %d, want %d", step, path, fi.Version, len(of.versions))
				}
			}
		}
		// Final sweep: every surviving file readable and correct.
		for _, path := range paths() {
			got, err := tb.fs.ReadFile(p, path)
			if err != nil {
				t.Fatalf("final read %s: %v", path, err)
			}
			want := model[path].versions[len(model[path].versions)-1]
			if !bytes.Equal(got, want) {
				t.Fatalf("final read %s: mismatch", path)
			}
		}
		// Drain any in-flight burns so the env quiesces cleanly.
		p.Sleep(4 * time.Hour)
	})
}

// TestOracleSurvivesCrashReopen extends the oracle with a checkpoint +
// crash + Reopen in the middle of the workload.
func TestOracleSurvivesCrashReopen(t *testing.T) {
	// The bed's backends (MV array, buffer) survive the "crash"; only the FS
	// instance is discarded and reopened.
	tb := newBed(t, func(c *Config) { c.AutoBurn = false })
	model := map[string][]byte{}
	tb.run(t, func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 30; i++ {
			path := fmt.Sprintf("/cr/f%02d", i)
			data := make([]byte, rng.Intn(50*1024)+1)
			for j := range data {
				data[j] = byte(j*7 + i)
			}
			if err := tb.fs.WriteFile(p, path, data); err != nil {
				t.Fatalf("write: %v", err)
			}
			model[path] = data
		}
		c, err := tb.fs.FlushAndBurn(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Wait(p); err != nil {
			t.Fatalf("burn: %v", err)
		}
		if err := tb.fs.Checkpoint(p); err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
		tb.fs.Stop()
		// Crash: reopen from the same MV backend + buffer.
		fs2, err := Reopen(tb.env, p, tb.fs.Config(), tb.lib, tb.fs.mvStore, tb.buf)
		if err != nil {
			t.Fatalf("Reopen: %v", err)
		}
		for path, want := range model {
			got, err := fs2.ReadFile(p, path)
			if err != nil {
				t.Fatalf("read %s after reopen: %v", path, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s corrupted across crash", path)
			}
		}
		// And the reopened instance accepts new work.
		if err := fs2.WriteFile(p, "/cr/new", []byte("post-crash")); err != nil {
			t.Fatalf("write after reopen: %v", err)
		}
		fs2.Stop()
	})
}
