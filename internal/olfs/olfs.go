// Package olfs implements the Optical Library File System (§4 of the
// paper): the global virtualized POSIX namespace over the ROS tiered store.
//
// It composes the module structure of Fig 3:
//
//   - PI  (POSIX Interface)           — fsiface.go, vfs.FileSystem
//   - WBM (Writing Bucket Management) — write.go over internal/bucket
//   - DIM (Disc Image Management)     — internal/image catalog + parity
//   - BTM (Burning Task Management)   — task.go burn daemon
//   - FTM (Fetching Task Management)  — task.go fetch logic
//   - MC  (Mechanical Controller)     — internal/rack composites
//   - DB  (Disc Burning)              — internal/optical drives
//   - RC  (Read Cache)                — bucket manager LRU residency
//   - MI  (Maintenance Interface)     — recover.go + stats accessors
//
// Files enter updatable UDF buckets on the disk write buffer (preliminary
// bucket writing, §4.3), full buckets seal into disc images, parity images
// are generated lazily (§4.7), and image sets are burned onto 12-disc trays
// asynchronously. Reads resolve through MV index files and fall down the
// tier ladder of Table 1: bucket -> buffered image -> disc in drive -> disc
// in roller.
package olfs

import (
	"errors"
	"fmt"
	"time"

	"ros/internal/bucket"
	"ros/internal/image"
	"ros/internal/mv"
	"ros/internal/obs"
	"ros/internal/optical"
	"ros/internal/rack"
	"ros/internal/sched"
	"ros/internal/sim"
	"ros/internal/udf"
	"ros/internal/writepath"
)

// ReadPolicy selects what a fetch does when every drive group is burning
// (§4.8's two policies).
type ReadPolicy int

// Read policies for the all-drives-busy case.
const (
	// WaitForBurn waits for a burning group to finish (minutes to an hour).
	WaitForBurn ReadPolicy = iota
	// InterruptBurn aborts a burning array, services the read, then reloads
	// and resumes the burn in append mode.
	InterruptBurn
)

// Config tunes OLFS. Zero fields take the documented defaults.
type Config struct {
	// DataDiscs and ParityDiscs set the per-tray redundancy (§4.7):
	// 11+1 (RAID-5-like, default) or 10+2 (RAID-6-like).
	DataDiscs   int
	ParityDiscs int

	// MVOpCost is the per-index-file-operation cost (Fig 7: ~2.5 ms).
	MVOpCost time.Duration
	// SwitchCost is the FUSE kernel-user mode switch charged per internal
	// operation (§4.8).
	SwitchCost time.Duration
	// ReadReqOverhead/WriteReqOverhead are the OLFS data-path costs per
	// request as delivered by the kernel (128 KB FUSE chunks), calibrated
	// from Fig 6 (ext4+OLFS vs ext4+FUSE).
	ReadReqOverhead  time.Duration
	WriteReqOverhead time.Duration
	// DirectIO makes every data write/read also charge an MV op (journal
	// sync), the §5.2 tracing configuration for Fig 7.
	DirectIO bool

	// VFSMountTime is the §5.4 "mounting disc into local VFS" delay.
	VFSMountTime time.Duration

	// AutoBurn enqueues a burn task whenever DataDiscs images are sealed.
	AutoBurn bool
	// BurnStagger serializes drive burn starts within an array (metadata-
	// area formatting + task dispatch); calibrated so a 12x25GB array takes
	// the paper's 1146 s (Fig 9).
	BurnStagger time.Duration
	// ReadPolicy picks the all-drives-burning behaviour (§4.8).
	ReadPolicy ReadPolicy
	// Forepart stores the first 256 KB of each file in MV to bound first-
	// byte latency on roller misses (§4.8).
	Forepart bool
	// RecycleAfterBurn frees bucket slots immediately after burning instead
	// of retaining them as read cache (ablation knob; default keeps them).
	RecycleAfterBurn bool
	// BucketBytes overrides the bucket capacity (default: the disc
	// capacity). Smaller buckets are useful in tests; burned discs still
	// charge full write-all-once time.
	BucketBytes int64

	// SerialRead disables the tray-wide parallel read plane (multi-part
	// fan-out, concurrent scrub/recover strips) and walks discs one at a
	// time on the calling proc — the pre-parallel behaviour, kept as an
	// ablation knob for Table 2 style comparisons.
	SerialRead bool

	// Sched configures the mechanical request scheduler: fifo reproduces
	// the legacy reactive arbitration; qos-scan enables QoS classes with
	// aging, SCAN fetch ordering and LRU+demand victim selection.
	Sched sched.Config

	// Write configures the write-path group-commit burn batching and the
	// admission token bucket (internal/writepath). The zero value keeps
	// the legacy discipline: one burn group per full set, byte accounting
	// on, blocking admission off. A zero Admission.CapacityBytes defaults
	// to the write buffer's total bucket capacity.
	Write writepath.Config

	// Obs is the metrics registry to record into. Nil falls back to the
	// rack library's registry, so the whole stack shares one snapshot.
	Obs *obs.Registry

	// Trace configures the causal request tracer (journal capacity, tail
	// sampling). The zero value enables tracing with defaults; set
	// Trace.Capacity negative to disable.
	Trace obs.TracerConfig
}

func (c Config) withDefaults() Config {
	if c.DataDiscs == 0 {
		c.DataDiscs = 11
	}
	if c.ParityDiscs == 0 {
		c.ParityDiscs = 1
	}
	if c.MVOpCost == 0 {
		c.MVOpCost = mv.DefaultOpCost
	}
	if c.SwitchCost == 0 {
		c.SwitchCost = 600 * time.Microsecond
	}
	if c.ReadReqOverhead == 0 {
		c.ReadReqOverhead = 55 * time.Microsecond // 0.443 ms per 1 MB / 8 chunks
	}
	if c.WriteReqOverhead == 0 {
		c.WriteReqOverhead = 29 * time.Microsecond // 0.234 ms per 1 MB / 8 chunks
	}
	if c.VFSMountTime == 0 {
		c.VFSMountTime = 220 * time.Millisecond
	}
	if c.BurnStagger == 0 {
		c.BurnStagger = 43 * time.Second
	}
	return c
}

// OLFS errors.
var (
	ErrNoBlankTray = errors.New("olfs: no empty tray with blank discs")
	ErrPartMissing = errors.New("olfs: image holding file part is unavailable")
	ErrStopped     = errors.New("olfs: filesystem stopped")
)

// OpTrace records one internal operation for Fig 7 style breakdowns.
type OpTrace struct {
	Name  string
	Start time.Duration
	Dur   time.Duration
}

// FS is the optical library file system.
type FS struct {
	env *sim.Env
	cfg Config
	lib *rack.Library

	MV      *mv.Volume
	mvStore mv.Backend
	Buckets *bucket.Manager
	Cat     *image.Catalog

	cur   *bucket.Bucket // open bucket receiving writes
	curMu *sim.Resource  // serializes bucket writes (one PBW stream)

	burnQ      *sim.Queue[*burnTask]
	sched      *sched.Scheduler     // arbitrates drive groups and arm demand
	wp         *writepath.Controller // admission control + burn-group planning
	fetches    map[string]*sim.Completion[int]
	fetchJoins map[string]int // waiters coalesced onto an in-flight fetch
	mounted    map[*optical.Drive]*udf.Volume

	// groupEpoch[gi] increments every time group gi's tray is unloaded.
	// fileReader sources and fs.mounted entries record the epoch they were
	// resolved under; a mismatch marks them stale so reads transparently
	// re-resolve (via fetchTray) instead of reading the swapped-in tray.
	groupEpoch []uint64

	tracing bool
	trace   []OpTrace
	stopped bool

	// Direct-writing mode staging (§4.8).
	moverQ       *sim.Queue[directItem]
	moverIdle    *sim.Signal
	moverPending int
	moverErr     error

	// Stats (maintenance interface). Each field is the storage cell of the
	// corresponding olfs.* counter in the obs registry (bound via CounterAt
	// in New), so these direct reads stay exact while all increments go
	// through the registry handles in m.
	FilesWritten  int64
	FilesRead     int64
	BytesWritten  int64
	BytesRead     int64
	BurnTasks     int64
	FetchTasks    int64
	BurnResumes   int64
	SplitFiles    int64
	ForepartHits  int64
	CacheHits     int64
	CacheMisses   int64
	InterruptedBs int64
	DirectIngests int64
	DirectBytes   int64
	Scrubs        int64
	Repairs       int64
	MVSnapshots   int64

	obs    *obs.Registry
	tracer *obs.Tracer
	m      fsMetrics
}

// fsMetrics caches the registry handles for OLFS's counters and the latency
// histograms of its long-running task machinery.
type fsMetrics struct {
	filesWritten  *obs.Counter
	filesRead     *obs.Counter
	bytesWritten  *obs.Counter
	bytesRead     *obs.Counter
	burnTasks     *obs.Counter
	fetchTasks    *obs.Counter
	burnResumes   *obs.Counter
	splitFiles    *obs.Counter
	forepartHits  *obs.Counter
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	interruptedBs *obs.Counter
	directIngests *obs.Counter
	directBytes   *obs.Counter
	scrubs        *obs.Counter
	repairs       *obs.Counter
	mvSnapshots   *obs.Counter
	coalesced     *obs.Counter   // fetch waiters that joined an in-flight fetch
	batchSize     *obs.Histogram // consumers served per mechanical fetch
	mvCharges     *obs.Counter   // MV index-op costs charged (DirectIO data path)
	staleSources  *obs.Counter   // read-handle sources invalidated by tray eviction
	joinRetries   *obs.Counter   // joined fetches retried after the winner failed
}

// bindMetrics registers every stats field as an olfs.* counter whose storage
// is the field itself, and creates the task-latency histograms eagerly so
// they appear in snapshots even before the first task completes.
func (fs *FS) bindMetrics(r *obs.Registry) {
	fs.obs = r
	fs.m = fsMetrics{
		filesWritten:  r.CounterAt("olfs.files_written", &fs.FilesWritten),
		filesRead:     r.CounterAt("olfs.files_read", &fs.FilesRead),
		bytesWritten:  r.CounterAt("olfs.bytes_written", &fs.BytesWritten),
		bytesRead:     r.CounterAt("olfs.bytes_read", &fs.BytesRead),
		burnTasks:     r.CounterAt("olfs.burn_tasks", &fs.BurnTasks),
		fetchTasks:    r.CounterAt("olfs.fetch_tasks", &fs.FetchTasks),
		burnResumes:   r.CounterAt("olfs.burn_resumes", &fs.BurnResumes),
		splitFiles:    r.CounterAt("olfs.split_files", &fs.SplitFiles),
		forepartHits:  r.CounterAt("olfs.forepart_hits", &fs.ForepartHits),
		cacheHits:     r.CounterAt("olfs.cache_hits", &fs.CacheHits),
		cacheMisses:   r.CounterAt("olfs.cache_misses", &fs.CacheMisses),
		interruptedBs: r.CounterAt("olfs.interrupted_burns", &fs.InterruptedBs),
		directIngests: r.CounterAt("olfs.direct_ingests", &fs.DirectIngests),
		directBytes:   r.CounterAt("olfs.direct_bytes", &fs.DirectBytes),
		scrubs:        r.CounterAt("olfs.scrubs", &fs.Scrubs),
		repairs:       r.CounterAt("olfs.repairs", &fs.Repairs),
		mvSnapshots:   r.CounterAt("olfs.mv_snapshots", &fs.MVSnapshots),
		coalesced:     r.Counter("sched.coalesced_fetches"),
		batchSize:     r.Histogram("sched.batch_size"),
		mvCharges:     r.Counter("olfs.mv_charges"),
		staleSources:  r.Counter("olfs.stale_sources"),
		joinRetries:   r.Counter("olfs.join_retries"),
	}
	r.Histogram("olfs.burn.latency")
	r.Histogram("olfs.fetch.latency")
	r.Histogram("olfs.parity.latency")
}

// New assembles OLFS over a rack library, an MV backend (RAID-1 SSDs) and a
// disk write buffer (cached RAID-5 volumes). The bucket capacity equals the
// library's disc capacity.
func New(env *sim.Env, cfg Config, lib *rack.Library, mvBackend mv.Backend, buffer udf.Backend) (*FS, error) {
	cfg = cfg.withDefaults()
	discCap := cfg.BucketBytes
	if discCap <= 0 {
		discCap = lib.Config().Media.Capacity()
	}
	slots := int(buffer.Size() / discCap)
	if slots < cfg.DataDiscs+cfg.ParityDiscs {
		return nil, fmt.Errorf("olfs: buffer fits %d bucket slots, need >= %d",
			slots, cfg.DataDiscs+cfg.ParityDiscs)
	}
	mgr, err := bucket.NewManager(env, buffer, discCap, slots)
	if err != nil {
		return nil, err
	}
	fs := &FS{
		env:        env,
		cfg:        cfg,
		lib:        lib,
		MV:         mv.New(env, mvBackend, cfg.MVOpCost),
		mvStore:    mvBackend,
		Buckets:    mgr,
		Cat:        image.NewCatalog(),
		curMu:      sim.NewResource(env, 1),
		burnQ:      sim.NewQueue[*burnTask](env),
		fetches:    make(map[string]*sim.Completion[int]),
		fetchJoins: make(map[string]int),
		mounted:    make(map[*optical.Drive]*udf.Volume),
		groupEpoch: make([]uint64, len(lib.Groups)),
	}
	reg := cfg.Obs
	if reg == nil {
		reg = lib.Obs()
	}
	if reg == nil {
		reg = obs.New(env)
	}
	fs.bindMetrics(reg)
	fs.tracer = obs.NewTracer(env, cfg.Trace)
	reg.AttachTracer(fs.tracer)
	fs.MV.AttachObs(reg)
	scfg := cfg.Sched
	scfg.Obs = reg
	fs.sched = sched.New(env, scfg, lib)
	wcfg := cfg.Write
	if wcfg.Admission.CapacityBytes <= 0 {
		wcfg.Admission.CapacityBytes = int64(slots) * discCap
	}
	fs.wp = writepath.New(env, wcfg, scfg, reg)
	fs.wp.OnFlush(fs.maybeEnqueueBurn)
	// The §4.8 interrupt-burn read policy: when a fetch is starved because
	// every group is claimed or burning, abort one burning array at its
	// next chunk boundary; the burn task unloads, requeues itself in
	// append mode and releases its group claim.
	fs.sched.SetStarvedHook(func() {
		if fs.cfg.ReadPolicy != InterruptBurn {
			return
		}
		for _, g := range fs.lib.Groups {
			if g.AnyBurning() {
				for _, d := range g.Drives {
					if d.State() == optical.StateBurning {
						d.InterruptBurn()
					}
				}
				break
			}
		}
	})
	env.GoDaemon("olfs-btm", fs.burnDaemon)
	return fs, nil
}

// Sched returns the mechanical request scheduler (operational visibility:
// queue depths, per-class waits).
func (fs *FS) Sched() *sched.Scheduler { return fs.sched }

// WritePath returns the write-path controller: admission token bucket,
// burn-group planner, verify pipeline (operational visibility + tests).
func (fs *FS) WritePath() *writepath.Controller { return fs.wp }

// Config returns the effective configuration.
func (fs *FS) Config() Config { return fs.cfg }

// Library returns the underlying mechanical library.
func (fs *FS) Library() *rack.Library { return fs.lib }

// Obs returns the metrics registry shared by the whole stack.
func (fs *FS) Obs() *obs.Registry { return fs.obs }

// Tracer returns the causal request tracer (nil when tracing is disabled).
func (fs *FS) Tracer() *obs.Tracer { return fs.tracer }

// Stop shuts down background daemons (after draining, for tests).
func (fs *FS) Stop() {
	if !fs.stopped {
		fs.stopped = true
		fs.burnQ.Close()
		if fs.moverQ != nil {
			fs.moverQ.Close()
		}
	}
}

// StartTrace begins recording internal operations (Fig 7).
func (fs *FS) StartTrace() { fs.tracing = true; fs.trace = nil }

// StopTrace stops recording and returns the trace.
func (fs *FS) StopTrace() []OpTrace {
	fs.tracing = false
	t := fs.trace
	fs.trace = nil
	return t
}

// op runs one internal OLFS operation: a kernel-user mode switch followed by
// the operation body, recorded in the trace and the per-op histogram.
func (fs *FS) op(p *sim.Proc, name string, fn func() error) error {
	p.Sleep(fs.cfg.SwitchCost)
	start := p.Now()
	sp := obs.StartChild(p, "olfs.op."+name)
	err := fn()
	sp.Fail(p, err)
	if fs.tracing {
		fs.trace = append(fs.trace, OpTrace{Name: name, Start: start, Dur: p.Now() - start})
	}
	fs.obs.Histogram("olfs.op."+name).ObserveSince(start, p.Now())
	return err
}

// dataOp runs a data (read/write) request. Buffered requests arrive through
// the FUSE splice path, whose per-chunk switch is charged by the fuse layer,
// so only DirectIO requests (the Fig 7 tracing mode, one full round trip per
// op) pay the metadata-grade switch here.
func (fs *FS) dataOp(p *sim.Proc, name string, fn func() error) error {
	if fs.cfg.DirectIO {
		return fs.op(p, name, fn)
	}
	start := p.Now()
	sp := obs.StartChild(p, "olfs.op."+name)
	err := fn()
	sp.Fail(p, err)
	if fs.tracing {
		fs.trace = append(fs.trace, OpTrace{Name: name, Start: start, Dur: p.Now() - start})
	}
	fs.obs.Histogram("olfs.op."+name).ObserveSince(start, p.Now())
	return err
}

// chargeMVOp charges one index-op cost without touching an index (the
// close/release operations of Fig 7).
func (fs *FS) chargeMVOp(p *sim.Proc) {
	fs.m.mvCharges.Add(1)
	p.Sleep(fs.MV.OpCost())
}

// ensureBucket returns the open bucket, opening one if needed. Caller holds
// curMu.
func (fs *FS) ensureBucket(p *sim.Proc) (*bucket.Bucket, error) {
	if fs.cur != nil && fs.cur.State() == bucket.StateOpen {
		return fs.cur, nil
	}
	b, err := fs.Buckets.Open(p)
	if err != nil {
		return nil, err
	}
	fs.cur = b
	return b, nil
}

// sealCurrent seals the open bucket into an image and triggers the BTM if
// enough images are ready. Caller holds curMu.
func (fs *FS) sealCurrent(p *sim.Proc) error {
	if fs.cur == nil || fs.cur.State() != bucket.StateOpen {
		return nil
	}
	if err := fs.Buckets.Seal(p, fs.cur); err != nil {
		return err
	}
	fs.cur = nil
	fs.maybeEnqueueBurn()
	return nil
}

// Sync seals the current bucket (even if not full) and enqueues any complete
// burn sets — the flush entry point of the maintenance interface.
func (fs *FS) Sync(p *sim.Proc) error {
	fs.curMu.Acquire(p)
	defer fs.curMu.Release()
	return fs.sealCurrent(p)
}

// FlushAndBurn seals the current bucket and forces burn tasks for ALL
// sealed images, including a trailing partial set (fewer than DataDiscs).
// The returned completion resolves when every enqueued task finishes, with
// the first error if any.
func (fs *FS) FlushAndBurn(p *sim.Proc) (*sim.Completion[error], error) {
	fs.curMu.Acquire(p)
	if err := fs.sealCurrent(p); err != nil {
		fs.curMu.Release()
		return nil, err
	}
	fs.curMu.Release()
	imgs := fs.Buckets.FilledUnburned()
	all := sim.NewCompletion[error](fs.env)
	if len(imgs) == 0 {
		all.Resolve(nil, nil)
		return all, nil
	}
	var tasks []*sim.Completion[error]
	for len(imgs) > 0 {
		n := fs.cfg.DataDiscs
		if n > len(imgs) {
			n = len(imgs)
		}
		tasks = append(tasks, fs.enqueueBurn(imgs[:n]))
		imgs = imgs[n:]
	}
	fs.env.Go("flush-join", func(jp *sim.Proc) {
		var firstErr error
		for _, t := range tasks {
			if _, err := t.Wait(jp); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		all.Resolve(firstErr, firstErr)
	})
	return all, nil
}

// maybeEnqueueBurn asks the write-path planner for burn groups while it
// has any to give. In the legacy discipline each full data set comes back
// as its own single-set group (so multiple drive groups still burn
// concurrently); under group commit several sets return as one group that
// shares a single sched claim.
func (fs *FS) maybeEnqueueBurn() {
	if !fs.cfg.AutoBurn {
		return
	}
	for {
		ready := fs.Buckets.FilledUnburned()
		sets := fs.wp.PlanBurn(ready, fs.cfg.DataDiscs)
		if len(sets) == 0 {
			return
		}
		fs.enqueueBurnGroup(sets)
	}
}

// enqueueBurn queues one image set as a single-set burn group (the
// FlushAndBurn path, which bypasses the batching planner).
func (fs *FS) enqueueBurn(imgs []*bucket.Bucket) *sim.Completion[error] {
	return fs.enqueueBurnGroup([][]*bucket.Bucket{imgs})
}

// enqueueBurnGroup marks the group's images burning and queues the task.
func (fs *FS) enqueueBurnGroup(sets [][]*bucket.Bucket) *sim.Completion[error] {
	t := &burnTask{done: sim.NewCompletion[error](fs.env)}
	for _, imgs := range sets {
		for _, b := range imgs {
			// Ignore errors: FilledUnburned guarantees the filled state.
			_ = fs.Buckets.MarkBurning(b)
		}
		t.sets = append(t.sets, &burnSet{images: imgs})
	}
	fs.m.burnTasks.Add(int64(len(sets)))
	fs.wp.NoteGroup(sets)
	fs.burnQ.Push(t)
	return t.done
}
