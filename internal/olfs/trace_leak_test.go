package olfs

import (
	"fmt"
	"testing"
	"time"

	"ros/internal/obs"
	"ros/internal/optical"
	"ros/internal/rack"
	"ros/internal/sim"
)

// writeBurnSetTB writes 4 x 400 KB files (two 1 MB buckets -> 2 data images +
// 1 parity) and returns the burn completion.
func writeBurnSetTB(t *testing.T, tb *testbed, p *sim.Proc) *sim.Completion[error] {
	t.Helper()
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("/arch/f%02d", i)
		if err := tb.fs.WriteFile(p, name, pat(400*1024, byte(i+1))); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
	}
	c, err := tb.fs.FlushAndBurn(p)
	if err != nil {
		t.Fatalf("FlushAndBurn: %v", err)
	}
	return c
}

// burningGroupTB returns the drive group currently burning, if any.
func burningGroupTB(tb *testbed) *rack.DriveGroup {
	for _, g := range tb.lib.Groups {
		if g.AnyBurning() {
			return g
		}
	}
	return nil
}

// TestTraceSpanBalanceMixedWorkload drives every traced entry point —
// writes, an interrupted-then-resumed burn (which requeues the task), a cold
// read through the fetch path, and a scrub — and asserts the span ledger
// balances: zero open spans at quiescence, no snapshot warnings, and the
// retried burn trace captured with Retries > 0 despite aggressive sampling.
func TestTraceSpanBalanceMixedWorkload(t *testing.T) {
	tb := newBed(t, func(c *Config) {
		c.AutoBurn = false
		c.RecycleAfterBurn = true // force the read through the mechanical path
		// Aggressive tail sampling: clean traces are mostly dropped, so the
		// retried burn only survives via the always-capture-faulty rule.
		c.Trace = obs.TracerConfig{SampleEvery: 1000}
	})
	tb.run(t, func(p *sim.Proc) {
		c := writeBurnSetTB(t, tb, p)

		// Interrupt drive 0 mid-burn: the task requeues and resumes (§4.8),
		// marking the trace as retried.
		tb.env.Go("interrupter", func(ip *sim.Proc) {
			for i := 0; i < 10000; i++ {
				if g := burningGroupTB(tb); g != nil {
					ip.Sleep(50 * time.Second)
					if g.Drives[0].State() == optical.StateBurning {
						g.Drives[0].InterruptBurn()
					}
					return
				}
				ip.Sleep(time.Second)
			}
		})
		if _, err := c.Wait(p); err != nil {
			t.Fatalf("burn after interrupt+resume: %v", err)
		}

		// Cold read: fetch, arm, tray load, spin-up, read.
		if _, err := tb.fs.ReadFile(p, "/arch/f00"); err != nil {
			t.Fatalf("cold read: %v", err)
		}

		// Scrub a burned tray (verify spans, nested scrub ops).
		trays := usedTrayList(tb.fs)
		if len(trays) == 0 {
			t.Fatal("no burned trays to scrub")
		}
		if _, err := tb.fs.ScrubAndRepair(p, trays[0]); err != nil {
			t.Fatalf("scrub: %v", err)
		}
		p.Sleep(time.Hour) // let trays unload and the pipeline drain
	})

	if open := tb.fs.Obs().OpenSpans(); open != 0 {
		t.Errorf("open spans at quiescence = %d, want 0", open)
	}
	snap := tb.fs.Obs().Snapshot()
	if len(snap.Warnings) != 0 {
		t.Errorf("snapshot warnings = %v, want none", snap.Warnings)
	}
	tr := tb.fs.Tracer()
	if tr.Active() != 0 {
		t.Errorf("active traces at quiescence = %d, want 0", tr.Active())
	}
	var burn *obs.Trace
	for _, trc := range tr.Traces() {
		if trc.Name == "olfs.burn" && trc.Retries > 0 {
			burn = trc
		}
	}
	if burn == nil {
		t.Fatal("no retried olfs.burn trace captured (tail sampling must keep faulty traces)")
	}
	if burn.Class != "burn" {
		t.Errorf("burn trace class = %q, want burn", burn.Class)
	}
	// The resumed burn trace carries the whole mechanical story.
	names := map[string]bool{}
	for _, sp := range burn.Spans() {
		names[sp.Name] = true
	}
	for _, want := range []string{"sched.wait", "rack.tray_load", "optical.burn"} {
		if !names[want] {
			t.Errorf("retried burn trace is missing span %s", want)
		}
	}
}
