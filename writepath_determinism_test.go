package ros

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestWritepathDeterminism: the write path is part of the deterministic
// simulation contract — two systems built from the same options and driven
// by the same workload must produce byte-identical writepath.* telemetry
// and shed exactly the same set of writes. A divergence here means wall
// clock, map iteration order, or goroutine scheduling leaked into the
// admission or batching logic.
func TestWritepathDeterminism(t *testing.T) {
	type outcome struct {
		series string // writepath.* telemetry, JSON
		shed   string // every shed write, in per-worker issue order
		acked  int
	}
	runOnce := func() outcome {
		opts := soakOptions()
		opts.SampleEvery = 5 * time.Minute
		sys, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		outs, _, err := driveOverload(sys, 6*time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		var shed strings.Builder
		acked := 0
		for _, o := range outs {
			acked += len(o.ackedPaths)
			for _, path := range o.shed {
				shed.WriteString(path)
				shed.WriteByte('\n')
			}
		}
		var series bytes.Buffer
		for _, sd := range sys.Telemetry.Dump(0) {
			if !strings.HasPrefix(sd.Name, "writepath.") {
				continue
			}
			fmt.Fprintf(&series, "%s/%s", sd.Name, sd.Kind)
			for _, pt := range sd.Points {
				fmt.Fprintf(&series, " %d:%g", pt.T, pt.V)
			}
			series.WriteByte('\n')
		}
		return outcome{series: series.String(), shed: shed.String(), acked: acked}
	}

	a, b := runOnce(), runOnce()
	if a.acked == 0 || len(a.shed) == 0 {
		t.Fatalf("workload not exercising the write path: %d acked, shed set %q", a.acked, a.shed)
	}
	if a.acked != b.acked {
		t.Errorf("acked count diverged: %d vs %d", a.acked, b.acked)
	}
	if a.shed != b.shed {
		t.Errorf("shed sets diverged:\nrun A:\n%srun B:\n%s", a.shed, b.shed)
	}
	if a.series != b.series {
		t.Errorf("writepath.* telemetry diverged:\nrun A:\n%s\nrun B:\n%s", a.series, b.series)
	}
	if !strings.Contains(a.series, "writepath.") {
		t.Error("no writepath.* series sampled")
	}
}
