package ros

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"ros/internal/bucket"
	"ros/internal/sim"
)

// Soak parameters: a closed loop that offers well over the optical drain
// rate, so the write buffer sits at its high-water mark for the entire run
// and deadline shedding is continuously exercised.
const (
	soakWorkers   = 10
	soakWriteSize = 192 << 10
	soakCapacity  = 48 << 20
	soakMaxWait   = 2 * time.Minute
)

// soakOut is one worker's ledger, accumulated deterministically in virtual
// time and merged in worker order after the join.
type soakOut struct {
	ackedPaths []string
	ackedSeed  []byte
	shed       []string
	lats       []time.Duration
	offered    int64
	badErr     error
}

func soakOptions() Options {
	return Options{
		Rollers:     1,
		DriveGroups: 2,
		BufferSlots: 60,
		BucketBytes: 2 << 20,
		BurnCap:     380e6,
		FS: FSConfig{
			DataDiscs:        2,
			ParityDiscs:      1,
			AutoBurn:         true,
			RecycleAfterBurn: true,
		},
		Write: WriteConfig{
			Batch: BatchConfig{
				BurnBatchBytes:  16 << 20,
				BurnBatchLinger: 5 * time.Minute,
			},
			Admission: AdmissionConfig{
				Enabled:       true,
				CapacityBytes: soakCapacity,
				MaxWait:       soakMaxWait,
			},
		},
	}
}

func soakPayload(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i*7)
	}
	return b
}

// driveOverload runs the closed-loop ingest for horizon, then drains the
// burn pipeline. Every worker issues its next write the moment the previous
// one resolves (ack or shed), mixing interactive and archival traffic.
// burnedAtHorizon reports data bytes on disc when the offered load stopped —
// the sustained drain rate the offered load is compared against.
func driveOverload(sys *System, horizon time.Duration) (outs []soakOut, burnedAtHorizon int64, err error) {
	outs = make([]soakOut, soakWorkers)
	err = sys.Do(func(p *Proc) error {
		done := sim.NewQueue[int](sys.Env)
		for w := 0; w < soakWorkers; w++ {
			w := w
			sys.Env.Go(fmt.Sprintf("soak-%d", w), func(wp *sim.Proc) {
				o := &outs[w]
				for seq := 0; wp.Now() < horizon && o.badErr == nil; seq++ {
					path := fmt.Sprintf("/soak/w%d/f-%06d", w, seq)
					cl := WriteInteractive
					if seq%4 == 3 {
						cl = WriteArchival
					}
					seed := byte(w*37 + seq)
					start := wp.Now()
					werr := sys.FS.WriteFileClass(wp, path, soakPayload(soakWriteSize, seed), cl)
					o.offered += soakWriteSize
					switch {
					case werr == nil:
						o.lats = append(o.lats, wp.Now()-start)
						o.ackedPaths = append(o.ackedPaths, path)
						o.ackedSeed = append(o.ackedSeed, seed)
					case errors.Is(werr, ErrOverload):
						o.shed = append(o.shed, path)
						wp.Sleep(30 * time.Second) // back off before retrying
					default:
						o.badErr = fmt.Errorf("%s: %w", path, werr)
					}
				}
				done.Push(w)
			})
		}
		for w := 0; w < soakWorkers; w++ {
			if _, ok := done.Pop(p); !ok {
				return fmt.Errorf("worker join interrupted")
			}
		}
		for _, addr := range sys.FS.Cat.DIL {
			if !addr.Parity {
				burnedAtHorizon += int64(addr.Len)
			}
		}
		p.Sleep(8 * time.Hour) // drain: linger flush, burn queue, verify
		return nil
	})
	return outs, burnedAtHorizon, err
}

// TestOverloadSoak runs the write path at a sustained >= 2x overload for two
// simulated days and checks the admission-control contract: the buffer never
// exceeds its capacity, every acknowledged write survives to be read back,
// ack latency is bounded by the admission deadline, and rejected writes are
// shed with ErrOverload and nothing else.
func TestOverloadSoak(t *testing.T) {
	horizon := 48 * time.Hour
	if testing.Short() {
		horizon = 6 * time.Hour
	}
	sys, err := New(soakOptions())
	if err != nil {
		t.Fatal(err)
	}
	outs, burned, err := driveOverload(sys, horizon)
	if err != nil {
		t.Fatal(err)
	}

	adm := sys.FS.WritePath().Admission()
	if peak, cap := adm.MaxInflightBytes(), adm.Config().CapacityBytes; peak > cap {
		t.Errorf("buffer exceeded capacity: peak inflight %d > %d", peak, cap)
	}
	// After the drain the only bytes still charged are writes parked in
	// buckets that have not burned (an open bucket below the seal threshold
	// stays in the buffer indefinitely). Anything beyond that is a token
	// leak.
	// (Admission charges payload bytes; bucket occupancy adds per-file
	// framing on top, so parked is a strict upper bound.)
	byState := sys.FS.Buckets.BytesByState()
	parked := byState[bucket.StateOpen] + byState[bucket.StateFilled] + byState[bucket.StateBurning]
	if left := adm.InflightBytes(); left > parked {
		t.Errorf("inflight %d after drain exceeds the %d bytes parked in unburned buckets (token leak)", left, parked)
	}

	var lats []time.Duration
	var offered int64
	acked, shed := 0, 0
	for w, o := range outs {
		if o.badErr != nil {
			t.Fatalf("worker %d hit a non-overload error: %v", w, o.badErr)
		}
		lats = append(lats, o.lats...)
		offered += o.offered
		acked += len(o.ackedPaths)
		shed += len(o.shed)
	}
	if acked == 0 || shed == 0 {
		t.Fatalf("soak not in overload: %d acked, %d shed", acked, shed)
	}
	if burned > 0 {
		if factor := float64(offered) / float64(burned); factor < 2 {
			t.Errorf("offered/drain factor %.2f, want >= 2 (offered %d, burned %d)",
				factor, offered, burned)
		}
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if p99 := lats[len(lats)*99/100]; p99 > soakMaxWait {
		t.Errorf("p99 ack latency %v exceeds admission MaxWait %v", p99, soakMaxWait)
	}
	// A granted write waited at most MaxWait in admission; the buffer write
	// itself adds bounded service time on top.
	if max := lats[len(lats)-1]; max > soakMaxWait+30*time.Second {
		t.Errorf("max ack latency %v exceeds MaxWait + 30s service bound", max)
	}

	// Every acknowledged write must read back intact after the drain —
	// admission may shed un-acked writes, never acked ones.
	err = sys.Do(func(p *Proc) error {
		for w, o := range outs {
			for i, path := range o.ackedPaths {
				got, rerr := sys.FS.ReadFile(p, path)
				if rerr != nil {
					return fmt.Errorf("worker %d acked write %s unreadable: %w", w, path, rerr)
				}
				if !bytes.Equal(got, soakPayload(soakWriteSize, o.ackedSeed[i])) {
					return fmt.Errorf("worker %d acked write %s corrupted", w, path)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Error(err)
	}
	t.Logf("soak: %v horizon, %d acked, %d shed, p99 %v, peak %d/%d bytes",
		horizon, acked, shed, lats[len(lats)*99/100], adm.MaxInflightBytes(), soakCapacity)
}
