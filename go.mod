module ros

go 1.22
