package ros

import (
	"bytes"
	"testing"
	"time"
)

func TestSystemQuickstart(t *testing.T) {
	sys, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xA5}, 100<<10)
	err = sys.Do(func(p *Proc) error {
		if err := sys.FS.WriteFile(p, "/docs/hello.bin", data); err != nil {
			return err
		}
		got, err := sys.FS.ReadFile(p, "/docs/hello.bin")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, data) {
			t.Error("round trip mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.FilesWritten != 1 || st.FilesRead != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestSystemAutoBurnPipeline(t *testing.T) {
	sys, err := New(Options{BucketBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	err = sys.Do(func(p *Proc) error {
		// ~3 MB across 1 MB buckets seals enough images for an auto burn.
		for i := 0; i < 3; i++ {
			name := "/data/part-" + string(rune('a'+i))
			if err := sys.FS.WriteFile(p, name, bytes.Repeat([]byte{byte(i + 1)}, 900<<10)); err != nil {
				return err
			}
		}
		p.Sleep(3 * time.Hour) // drain the burn pipeline
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Stats().BurnTasks == 0 {
		t.Error("auto burn never triggered")
	}
	// Discs physically hold data now.
	burnt := 0
	for _, r := range sys.Library.Rollers {
		for l := 0; l < 85; l++ {
			for s := 0; s < 6; s++ {
				for _, d := range r.Tray(l, s).Discs {
					if !d.Blank() {
						burnt++
					}
				}
			}
		}
	}
	if burnt == 0 {
		t.Error("no burned discs")
	}
}

func TestPrototypeOptionsShape(t *testing.T) {
	o := PrototypeOptions()
	if o.Rollers != 2 || o.Media != Media100GB {
		t.Errorf("prototype options: %+v", o)
	}
	// Don't build the full PB prototype here (buffer sizing is PB-scale);
	// the experiments package exercises it piecemeal.
}

func TestDisableAutoBurn(t *testing.T) {
	sys, err := New(Options{BucketBytes: 1 << 20, DisableAutoBurn: true})
	if err != nil {
		t.Fatal(err)
	}
	err = sys.Do(func(p *Proc) error {
		for i := 0; i < 3; i++ {
			if err := sys.FS.WriteFile(p, "/d/f"+string(rune('0'+i)), bytes.Repeat([]byte{1}, 900<<10)); err != nil {
				return err
			}
		}
		p.Sleep(time.Hour)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Stats().BurnTasks != 0 {
		t.Error("burn ran despite DisableAutoBurn")
	}
}
