// Archive: the long-term preservation story end to end — ingest a dataset,
// burn it across a disc array with inter-disc parity, lose a disc, recover
// the lost image from parity, and finally rebuild the whole namespace from
// nothing but the surviving discs (the paper's §4.4/§4.7 durability
// mechanisms).
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"ros"
	"ros/internal/image"
	"ros/internal/mv"
	"ros/internal/optical"
	"ros/internal/rack"
)

func main() {
	sys, err := ros.New(ros.Options{
		BucketBytes:     2 << 20,
		DisableAutoBurn: true,
		FS:              ros.FSConfig{DataDiscs: 4, ParityDiscs: 1, BurnStagger: 5 * time.Second, RecycleAfterBurn: true},
	})
	if err != nil {
		log.Fatal(err)
	}

	dataset := map[string][]byte{}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("/biobank/cohort-2016/sample-%03d.vcf", i)
		dataset[name] = bytes.Repeat([]byte{byte(i + 1), byte(i * 3)}, 400<<10)
	}

	err = sys.Do(func(p *ros.Proc) error {
		// Ingest.
		for name, data := range dataset {
			if err := sys.FS.WriteFile(p, name, data); err != nil {
				return err
			}
		}
		fmt.Printf("ingested %d files (%d KB) into buckets\n", len(dataset), 8*800)

		// Burn to a 4+1 disc array.
		start := p.Now()
		c, err := sys.FS.FlushAndBurn(p)
		if err != nil {
			return err
		}
		if _, err := c.Wait(p); err != nil {
			return err
		}
		fmt.Printf("burned with 4+1 inter-disc parity in %v\n", p.Now()-start)

		// Scrub: all parity consistent.
		tray := firstUsedTray(sys)
		rep, err := sys.FS.ScrubTray(p, tray)
		if err != nil {
			return err
		}
		fmt.Printf("scrub of %v: %d bad strips\n", tray, len(rep.BadStrips))

		// Disaster: one disc of the array is destroyed. (The scrub left the
		// array loaded in a drive group, so find the disc there.)
		victim := pickVictim(sys, tray)
		disc := discAt(sys, tray, victim)
		fmt.Printf("destroying disc %v (position %d of tray %v)\n", disc.ID, victim, tray)
		disc.Fail()

		// Recover the lost image from the surviving discs + parity.
		lost := imageAt(sys, tray, victim)
		start = p.Now()
		if _, err := sys.FS.RecoverImage(p, lost); err != nil {
			return err
		}
		fmt.Printf("recovered image %s from parity in %v\n", lost, p.Now()-start)

		// Every file still reads back intact.
		for name, want := range dataset {
			got, err := sys.FS.ReadFile(p, name)
			if err != nil {
				return fmt.Errorf("read %s: %w", name, err)
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("%s corrupted after recovery", name)
			}
		}
		fmt.Println("all files verified after single-disc loss")

		// Ultimate disaster: the metadata volume is wiped. Rebuild the
		// namespace by scanning the self-descriptive discs.
		sys.FS.MV = mv.New(sys.Env, freshMVStore(sys), sys.FS.Config().MVOpCost)
		sys.FS.Cat = image.NewCatalog()
		start = p.Now()
		if err := sys.FS.RecoverNamespace(p, []rack.TrayID{tray}); err != nil {
			return err
		}
		fmt.Printf("namespace rebuilt from discs in %v: %d files recovered\n",
			p.Now()-start, sys.FS.MV.FileCount())

		ok := 0
		for name, want := range dataset {
			got, err := sys.FS.ReadFile(p, name)
			if err == nil && bytes.Equal(got, want) {
				ok++
			}
		}
		fmt.Printf("%d/%d files byte-identical after full MV loss\n", ok, len(dataset))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

func firstUsedTray(sys *ros.System) rack.TrayID {
	for k, st := range sys.FS.Cat.DA {
		if st == image.DAUsed {
			var id rack.TrayID
			fmt.Sscanf(k, "r%d/L%d/S%d", &id.Roller, &id.Layer, &id.Slot)
			return id
		}
	}
	return rack.TrayID{}
}

// pickVictim returns a data-disc position of the tray (not parity).
func pickVictim(sys *ros.System, tray rack.TrayID) int {
	onTray := sys.FS.Cat.ImagesOnTray(tray)
	dataN := len(onTray) - 1 // one parity disc
	return dataN - 1         // last data position
}

func imageAt(sys *ros.System, tray rack.TrayID, pos int) image.ID {
	return sys.FS.Cat.ImagesOnTray(tray)[pos]
}

// discAt finds a disc of the tray whether it sits in the roller or in a
// drive group.
func discAt(sys *ros.System, tray rack.TrayID, pos int) *optical.Disc {
	for _, g := range sys.Library.Groups {
		if g.Source != nil && *g.Source == tray {
			return g.Drives[pos].Disc()
		}
	}
	tr, _ := sys.Library.Tray(tray)
	return tr.Discs[pos]
}

func freshMVStore(sys *ros.System) mv.Backend {
	// A replacement SSD pair for the rebuilt MV.
	return sys.Buffer // reuse buffer store as checkpoint target in the demo
}
