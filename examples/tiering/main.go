// Tiering: walk a file down the Table 1 latency ladder — open bucket,
// sealed image, disc in a drive, disc array in the roller — and watch the
// read latency change by five orders of magnitude while the path and API
// stay identical (the paper's "illusion of inline data accessibility").
package main

import (
	"fmt"
	"log"
	"time"

	"ros"
)

func main() {
	sys, err := ros.New(ros.Options{
		BucketBytes:     2 << 20,
		DisableAutoBurn: true,
		FS: ros.FSConfig{
			DataDiscs: 2, ParityDiscs: 1,
			BurnStagger:      5 * time.Second,
			RecycleAfterBurn: true,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	row := func(name string, d time.Duration) {
		fmt.Printf("  %-42s %12.4f s\n", name, d.Seconds())
	}

	err = sys.Do(func(p *ros.Proc) error {
		payload := make([]byte, 64<<10)
		for i := range payload {
			payload[i] = byte(i)
		}
		fmt.Println("read latency by file location (cf. paper Table 1):")

		// Tier 1: open bucket on the disk buffer.
		if err := sys.FS.WriteFile(p, "/ladder/file.bin", payload); err != nil {
			return err
		}
		t0 := p.Now()
		if _, err := sys.FS.ReadLocated(p, "/ladder/file.bin"); err != nil {
			return err
		}
		row("disk bucket (open)", p.Now()-t0)

		// Tier 2: sealed disc image, still buffered.
		if err := sys.FS.Sync(p); err != nil {
			return err
		}
		t0 = p.Now()
		if _, err := sys.FS.ReadLocated(p, "/ladder/file.bin"); err != nil {
			return err
		}
		row("disc image (buffered)", p.Now()-t0)

		// Burn it; the buffer copy is recycled, so the data now lives only
		// on optical discs in the roller.
		if err := sys.FS.WriteFile(p, "/ladder/pad.bin", payload); err != nil {
			return err
		}
		c, err := sys.FS.FlushAndBurn(p)
		if err != nil {
			return err
		}
		if _, err := c.Wait(p); err != nil {
			return err
		}

		// Tier 4 first: array in the roller -> robotic fetch (~70 s).
		t0 = p.Now()
		if _, err := sys.FS.ReadFile(p, "/ladder/file.bin"); err != nil {
			return err
		}
		row("disc array in roller (free drives)", p.Now()-t0)

		// Tier 3: the array is now in the drives; a sibling file on another
		// disc of the same array is a drive-level read.
		if _, err := sys.FS.ReadFirstByte(p, "/ladder/pad.bin"); err != nil {
			return err
		}
		t0 = p.Now()
		if _, err := sys.FS.ReadLocated(p, "/ladder/pad.bin"); err != nil {
			return err
		}
		row("disc in optical drive", p.Now()-t0)

		fmt.Printf("\nsame namespace, same API — latency spans %s to %s.\n",
			"sub-millisecond", "minute-scale")
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
