// Analytics: the paper's motivating big-data scenario — historical data
// preserved on optical discs stays inline-accessible, so an analytics scan
// walks years of records through the same POSIX namespace it would use on a
// live filesystem, with OLFS's fetch scheduler and read cache hiding the
// mechanics where it can (§1, §2.3).
package main

import (
	"fmt"
	"log"
	"time"

	"ros"
)

const (
	months        = 6
	filesPerMonth = 4
	fileSize      = 900 << 10
)

func main() {
	sys, err := ros.New(ros.Options{
		BucketBytes: 4 << 20,
		FS: ros.FSConfig{
			DataDiscs: 4, ParityDiscs: 1,
			BurnStagger:      5 * time.Second,
			RecycleAfterBurn: true, // archives are colder than the buffer
			Forepart:         true, // bound first-byte latency on cold reads
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	err = sys.Do(func(p *ros.Proc) error {
		// Phase 1: six months of telemetry ingested and auto-burned.
		fmt.Println("== ingest ==")
		for m := 0; m < months; m++ {
			for f := 0; f < filesPerMonth; f++ {
				name := fmt.Sprintf("/telemetry/2016-%02d/day-%02d.log", m+1, f+1)
				if err := sys.FS.WriteFile(p, name, record(m, f)); err != nil {
					return err
				}
			}
		}
		c, err := sys.FS.FlushAndBurn(p)
		if err != nil {
			return err
		}
		if _, err := c.Wait(p); err != nil {
			return err
		}
		st := sys.Stats()
		fmt.Printf("ingested %d files, %d burn tasks, %d arm loads; archive on disc\n",
			st.FilesWritten, st.BurnTasks, st.Loads)

		// Phase 2: an analyst asks "total bytes matching a predicate across
		// all of 2016" — a full historical scan.
		fmt.Println("\n== historical scan ==")
		scanStart := p.Now()
		var matched, scanned int64
		var coldReads int
		for m := 0; m < months; m++ {
			monthStart := p.Now()
			for f := 0; f < filesPerMonth; f++ {
				name := fmt.Sprintf("/telemetry/2016-%02d/day-%02d.log", m+1, f+1)
				data, err := sys.FS.ReadFile(p, name)
				if err != nil {
					return fmt.Errorf("scan %s: %w", name, err)
				}
				scanned += int64(len(data))
				for _, b := range data {
					if b == 0x7F {
						matched++
					}
				}
			}
			d := p.Now() - monthStart
			kind := "cache/drive hit"
			if d > 30*time.Second {
				kind = "mechanical fetch"
				coldReads++
			}
			fmt.Printf("  2016-%02d: %8.3fs  (%s)\n", m+1, d.Seconds(), kind)
		}
		fmt.Printf("scan of %d MB finished in %v: %d matches\n",
			scanned>>20, (p.Now() - scanStart).Round(time.Millisecond), matched)

		// Phase 3: first-byte latency for an interactive peek at cold data —
		// the forepart in MV answers before the robotics finish.
		fmt.Println("\n== interactive first byte (forepart) ==")
		target := "/telemetry/2016-01/day-01.log"
		t0 := p.Now()
		if _, err := sys.FS.ReadFirstByte(p, target); err != nil {
			return err
		}
		fmt.Printf("first byte of %s in %v\n", target, p.Now()-t0)

		st = sys.Stats()
		fmt.Printf("\ncache: %d hits / %d misses, %d mechanical fetches, %d cold month(s)\n",
			st.CacheHits, st.CacheMisses, st.FetchTasks, coldReads)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

// record synthesizes one telemetry file.
func record(m, f int) []byte {
	data := make([]byte, fileSize)
	for i := range data {
		data[i] = byte(i*7 + m*31 + f)
	}
	return data
}
