// Quickstart: assemble a ROS rack, write files through the POSIX-style
// namespace, read them back, and watch the burn pipeline move them onto
// write-once optical discs — all in virtual time on the discrete-event
// simulation.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"ros"
)

func main() {
	// A laptop-friendly rack: one roller of 6120 25GB discs, two groups of
	// 12 drives, 4 MB buckets (so the pipeline runs quickly), 2+1 parity.
	sys, err := ros.New(ros.Options{BucketBytes: 4 << 20})
	if err != nil {
		log.Fatal(err)
	}

	report := bytes.Repeat([]byte("ROS quickstart payload. "), 40000) // ~1 MB

	err = sys.Do(func(p *ros.Proc) error {
		// 1. Writes are acknowledged from the disk buffer in milliseconds.
		start := p.Now()
		if err := sys.FS.WriteFile(p, "/projects/eurosys17/paper.pdf", report); err != nil {
			return err
		}
		fmt.Printf("write ack:            %v (preliminary bucket writing)\n", p.Now()-start)

		// 2. Reads hit the buffer instantly.
		start = p.Now()
		got, err := sys.FS.ReadFile(p, "/projects/eurosys17/paper.pdf")
		if err != nil {
			return err
		}
		fmt.Printf("buffered read:        %v (%d bytes)\n", p.Now()-start, len(got))

		// 3. Updates create new versions; history stays readable.
		if err := sys.FS.WriteFile(p, "/projects/eurosys17/paper.pdf", report[:512]); err != nil {
			return err
		}
		fi, err := sys.FS.Stat(p, "/projects/eurosys17/paper.pdf")
		if err != nil {
			return err
		}
		fmt.Printf("after update:         version %d, %d bytes\n", fi.Version, fi.Size)

		// 4. Force the archive onto discs and wait for the robotics + burn.
		start = p.Now()
		c, err := sys.FS.FlushAndBurn(p)
		if err != nil {
			return err
		}
		if _, err := c.Wait(p); err != nil {
			return err
		}
		fmt.Printf("burned to discs in:   %v (load array + write-all-once + parity)\n", p.Now()-start)

		// 5. Still inline-accessible: the same path, no restore step.
		start = p.Now()
		got, err = sys.FS.ReadFile(p, "/projects/eurosys17/paper.pdf")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, report[:512]) {
			return fmt.Errorf("read-after-burn mismatch")
		}
		fmt.Printf("read after burn:      %v (read-cache hit)\n", p.Now()-start)

		// 6. Historical version 1 is still there (WORM provenance).
		fr, err := sys.FS.OpenFileVersion(p, "/projects/eurosys17/paper.pdf", 1)
		if err != nil {
			return err
		}
		buf := make([]byte, 64)
		n, err := fr.ReadAt(p, buf, 0)
		if err != nil {
			return err
		}
		fmt.Printf("version 1 readable:   %q...\n", buf[:min(16, n)])
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	st := sys.Stats()
	fmt.Printf("\nstats: %d files written, %d read, %d burn task(s), %d arm load(s), virtual time %v\n",
		st.FilesWritten, st.FilesRead, st.BurnTasks, st.Loads, sys.Env.Now().Round(time.Second))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
