// Objectstore: the §4.2 extension interfaces in action — the same optical
// archive served as an S3-style object store and over REST, with object
// versioning backed by OLFS's WORM provenance. Objects remain plain files in
// the POSIX view, inheriting tiering, parity and disc recoverability.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"

	"ros"
	"ros/internal/objstore"
)

func main() {
	sys, err := ros.New(ros.Options{BucketBytes: 4 << 20})
	if err != nil {
		log.Fatal(err)
	}
	store := objstore.New(sys.FS)

	// --- Native object API ---
	err = sys.Do(func(p *ros.Proc) error {
		if err := store.CreateBucket(p, "genomics"); err != nil {
			return err
		}
		v1 := bytes.Repeat([]byte("ACGT"), 50000)
		obj, err := store.Put(p, "genomics", "cohorts/2016/sample-001.fastq", v1,
			map[string]string{"lab": "wuhan-7", "instrument": "hiseq"})
		if err != nil {
			return err
		}
		fmt.Printf("put object: %s v%d etag=%s (%d bytes)\n", obj.Key, obj.Version, obj.ETag, obj.Size)

		// Update: a new version; the old one stays retrievable (WORM).
		v2 := bytes.Repeat([]byte("ACGTN"), 50000)
		obj, err = store.Put(p, "genomics", "cohorts/2016/sample-001.fastq", v2, nil)
		if err != nil {
			return err
		}
		fmt.Printf("updated to v%d\n", obj.Version)
		old, err := store.GetVersion(p, "genomics", "cohorts/2016/sample-001.fastq", 1)
		if err != nil {
			return err
		}
		fmt.Printf("version 1 still readable: %d bytes\n", len(old))

		// The object is also just a file in the global namespace.
		fi, err := sys.FS.Stat(p, objstore.Root+"/genomics/cohorts/2016/sample-001.fastq")
		if err != nil {
			return err
		}
		fmt.Printf("visible via POSIX too: %s (%d bytes, v%d)\n", fi.Path, fi.Size, fi.Version)

		// Push the archive onto discs; the object interface doesn't notice.
		c, err := sys.FS.FlushAndBurn(p)
		if err != nil {
			return err
		}
		if _, err := c.Wait(p); err != nil {
			return err
		}
		got, _, err := store.Get(p, "genomics", "cohorts/2016/sample-001.fastq")
		if err != nil {
			return err
		}
		fmt.Printf("read after burn: %d bytes, etag verified\n", len(got))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// --- REST gateway (real HTTP) ---
	srv := httptest.NewServer(objstore.NewRESTHandler(sys.Env, store))
	defer srv.Close()
	base := srv.URL + "/objects"
	fmt.Println("\nREST gateway on", srv.URL)

	req, _ := http.NewRequest("PUT", base+"/genomics/reports/summary.txt",
		bytes.NewReader([]byte("cohort summary: 1 sample archived")))
	req.Header.Set("X-Ros-Meta-Author", "pipeline")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PUT /genomics/reports/summary.txt ->", resp.Status)

	resp, err = http.Get(base + "/genomics?prefix=reports/")
	if err != nil {
		log.Fatal(err)
	}
	listing, _ := io.ReadAll(resp.Body)
	fmt.Println("GET /genomics?prefix=reports/ ->", string(bytes.TrimSpace(listing)))

	resp, _ = http.Get(base + "/genomics/reports/summary.txt")
	body, _ := io.ReadAll(resp.Body)
	fmt.Printf("GET object -> %q (etag %s)\n", body, resp.Header.Get("ETag"))
}
