package ros

// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5), one per artifact, plus ablation and substrate micro-benchmarks.
//
// Each experiment runs the full simulation and reports the headline virtual
// metrics (paper_* = the published value, meas_* = this reproduction) via
// b.ReportMetric; ns/op is the host cost of simulating the experiment.
//
// Run: go test -bench=. -benchmem

import (
	"fmt"
	"testing"

	"ros/internal/blockdev"
	"ros/internal/experiments"
	"ros/internal/optical"
	"ros/internal/raid"
	"ros/internal/sim"
	"ros/internal/udf"
)

// benchExperiment runs fn b.N times and publishes selected metrics.
func benchExperiment(b *testing.B, fn func() (experiments.Result, error), metrics ...string) {
	b.Helper()
	var last experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := fn()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, name := range metrics {
		for _, m := range last.Metrics {
			if m.Name == name {
				b.ReportMetric(m.Measured, "meas_"+metricUnitTag(name, m.Unit))
				b.ReportMetric(m.Paper, "paper_"+metricUnitTag(name, m.Unit))
			}
		}
	}
}

// metricUnitTag builds a compact metric tag.
func metricUnitTag(name, unit string) string {
	tag := ""
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			tag += string(r)
		case r == ' ' || r == ',' || r == '(' || r == ')':
			// skip
		}
		if len(tag) >= 24 {
			break
		}
	}
	return tag
}

// --- Table benches ---

// BenchmarkTable1ReadLocations regenerates Table 1 (read latency ladder).
func BenchmarkTable1ReadLocations(b *testing.B) {
	benchExperiment(b, experiments.Table1,
		"disk bucket", "disc in optical drive", "array in roller, free drives",
		"array in roller, drives idle (swap)")
}

// BenchmarkTable2DriveRead regenerates Table 2 (drive read speeds).
func BenchmarkTable2DriveRead(b *testing.B) {
	benchExperiment(b, experiments.Table2,
		"25GB single-drive read", "25GB 12-drive aggregate read",
		"100GB single-drive read", "100GB 12-drive aggregate read")
}

// BenchmarkTable3Mechanical regenerates Table 3 (load/unload latency).
func BenchmarkTable3Mechanical(b *testing.B) {
	benchExperiment(b, experiments.Table3,
		"load, uppermost layer", "unload, uppermost layer",
		"load, lowest layer", "unload, lowest layer")
}

// --- Figure benches ---

// BenchmarkFig6Throughput regenerates Fig 6 (five-stack normalized
// throughput). The slowest experiment (~10 s host per run).
func BenchmarkFig6Throughput(b *testing.B) {
	benchExperiment(b, experiments.Fig6,
		"samba+OLFS read absolute", "samba+OLFS write absolute")
}

// BenchmarkFig7OpBreakdown regenerates Fig 7 (internal op latencies).
func BenchmarkFig7OpBreakdown(b *testing.B) {
	benchExperiment(b, experiments.Fig7,
		"OLFS 1KB write latency", "OLFS 1KB read latency",
		"samba+OLFS 1KB write latency", "samba+OLFS 1KB read latency")
}

// BenchmarkFig8Burn25Single regenerates Fig 8 (25GB burn curve).
func BenchmarkFig8Burn25Single(b *testing.B) {
	benchExperiment(b, experiments.Fig8,
		"total recording time", "average recording speed")
}

// BenchmarkFig9Burn25Array regenerates Fig 9 (12-drive aggregate burn).
func BenchmarkFig9Burn25Array(b *testing.B) {
	benchExperiment(b, experiments.Fig9,
		"array recording time", "average aggregate throughput", "peak aggregate throughput")
}

// BenchmarkFig10Burn100 regenerates Fig 10 (100GB burn curve).
func BenchmarkFig10Burn100(b *testing.B) {
	benchExperiment(b, experiments.Fig10,
		"total recording time", "average recording speed")
}

// --- In-text experiment benches ---

// BenchmarkMVSize regenerates the §4.2 metadata sizing numbers.
func BenchmarkMVSize(b *testing.B) {
	benchExperiment(b, experiments.MVSize, "MV for 1B files + 1B dirs")
}

// BenchmarkMVRecovery regenerates the §4.2 recover-MV-from-discs run.
func BenchmarkMVRecovery(b *testing.B) {
	benchExperiment(b, experiments.MVRecovery, "recovery time extrapolated to 120 discs")
}

// BenchmarkTCO regenerates the §2.1 cost model.
func BenchmarkTCO(b *testing.B) {
	benchExperiment(b, experiments.TCO, "optical TCO", "HDD/optical ratio", "tape/optical ratio")
}

// BenchmarkPower regenerates the §5.1 power envelope.
func BenchmarkPower(b *testing.B) {
	benchExperiment(b, experiments.Power, "idle power", "peak power")
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationNoBuffer: tiered buffer vs synchronous burn.
func BenchmarkAblationNoBuffer(b *testing.B) {
	benchExperiment(b, experiments.AblationTieredBuffer,
		"buffered write ack", "synchronous-burn write ack")
}

// BenchmarkAblationFuseChunk: big_writes vs 4KB flushes.
func BenchmarkAblationFuseChunk(b *testing.B) {
	benchExperiment(b, experiments.AblationFuseChunk, "big_writes speedup")
}

// BenchmarkAblationParity is the delayed-parity path: parity generation cost
// per image set, measured inside the read-policy/burn pipeline ablation.
func BenchmarkAblationReadPolicy(b *testing.B) {
	benchExperiment(b, experiments.AblationReadPolicy,
		"read latency, wait policy", "read latency, interrupt policy")
}

// BenchmarkAblationForepart: first-byte latency with/without forepart.
func BenchmarkAblationForepart(b *testing.B) {
	benchExperiment(b, experiments.AblationForepart,
		"first byte with forepart", "first byte without forepart")
}

// BenchmarkAblationReadCache: RC hit vs mechanical re-fetch.
func BenchmarkAblationReadCache(b *testing.B) {
	benchExperiment(b, experiments.AblationReadCache,
		"re-read with RC (buffer hit)", "re-read without RC (mechanical fetch)")
}

// BenchmarkAblationUniquePath: image-space cost of redundant directories.
func BenchmarkAblationUniquePath(b *testing.B) {
	benchExperiment(b, experiments.AblationUniquePath, "directory redundancy overhead")
}

// BenchmarkAblationOverlap: serial vs overlapped mechanical scheduling.
func BenchmarkAblationOverlap(b *testing.B) {
	benchExperiment(b, experiments.AblationOverlapScheduling, "saving")
}

// BenchmarkAblationStreams: shared vs isolated RAID volumes under
// concurrent streams.
func BenchmarkAblationStreams(b *testing.B) {
	benchExperiment(b, experiments.AblationStreamIsolation, "interference slowdown")
}

// BenchmarkAblationDirectWrite: §4.8 direct-writing mode vs the NAS stack.
func BenchmarkAblationDirectWrite(b *testing.B) {
	benchExperiment(b, experiments.AblationDirectWrite, "direct-writing ingest throughput")
}

// BenchmarkAblationScheduler: fifo vs qos-scan mechanical scheduling.
func BenchmarkAblationScheduler(b *testing.B) {
	benchExperiment(b, experiments.AblationScheduler,
		"p95 cold-read latency, fifo", "p95 cold-read latency, qos-scan")
}

// BenchmarkSustainedIngest: steady-state sustainability sweep (derived).
func BenchmarkSustainedIngest(b *testing.B) {
	benchExperiment(b, experiments.SustainedIngest, "max data drain, 2 drive groups")
}

// --- Substrate micro-benchmarks (host-time performance of the library) ---

// BenchmarkSimEngine measures raw DES event throughput.
func BenchmarkSimEngine(b *testing.B) {
	env := sim.NewEnv()
	env.Go("ticker", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	env.Run()
}

// BenchmarkRAID5Write measures host cost of parity-maintaining writes.
func BenchmarkRAID5Write(b *testing.B) {
	env := sim.NewEnv()
	devs := make([]blockdev.Device, 5)
	for i := range devs {
		devs[i] = blockdev.New(env, 1<<30, blockdev.SSDProfile())
	}
	arr, err := raid.New(env, raid.RAID5, devs, 64<<10)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	env.Go("writer", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			off := (int64(i) % 512) << 20
			if err := arr.WriteAt(p, buf, off); err != nil {
				b.Error(err)
				return
			}
		}
	})
	env.Run()
}

// BenchmarkUDFWriteFile measures host cost of UDF file creation.
func BenchmarkUDFWriteFile(b *testing.B) {
	env := sim.NewEnv()
	disk := blockdev.New(env, 1<<31, blockdev.SSDProfile())
	data := make([]byte, 64<<10)
	b.SetBytes(64 << 10)
	b.ResetTimer()
	env.Go("writer", func(p *sim.Proc) {
		vol, err := udf.Format(p, disk, [16]byte{1}, "bench")
		if err != nil {
			b.Error(err)
			return
		}
		for i := 0; i < b.N; i++ {
			if err := vol.WriteFile(p, fmt.Sprintf("/d%d/f%d", i%50, i), data); err != nil {
				b.Error(err)
				return
			}
		}
	})
	env.Run()
}

// BenchmarkBurn25GB measures host cost of simulating one full 25 GB burn
// (675 virtual seconds).
func BenchmarkBurn25GB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := sim.NewEnv()
		dr := optical.NewDrive(env, "d0", nil)
		disc := optical.NewDisc("x", optical.Media25)
		env.Go("t", func(p *sim.Proc) {
			if err := dr.Load(p, disc); err != nil {
				b.Error(err)
				return
			}
			if _, err := dr.Burn(p, nil, optical.BurnOptions{}); err != nil {
				b.Error(err)
			}
		})
		env.Run()
	}
}

// BenchmarkOLFSWriteSmall measures the full OLFS write path for 4 KB files.
func BenchmarkOLFSWriteSmall(b *testing.B) {
	sys, err := New(Options{BucketBytes: 64 << 20, DisableAutoBurn: true})
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 4<<10)
	b.SetBytes(4 << 10)
	b.ResetTimer()
	err = sys.Do(func(p *Proc) error {
		for i := 0; i < b.N; i++ {
			if err := sys.FS.WriteFile(p, fmt.Sprintf("/bench/f%07d", i), data); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
